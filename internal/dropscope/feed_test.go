package dropscope

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dropzero/internal/feed"
	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// TestFetchReusesUnchangedDaySegments is the sliding-window regression
// test: when consecutive publications share four of their five days, a 200
// must re-parse only the day that actually changed, not the whole body.
func TestFetchReusesUnchangedDaySegments(t *testing.T) {
	store, client, day := newEnv(t)
	for i := 0; i < 8; i++ {
		seedPending(t, store, fmt.Sprintf("seg%d.com", i), day.AddDays(i))
	}
	ctx := context.Background()

	if _, err := client.Fetch(ctx, day); err != nil {
		t.Fatal(err)
	}
	reused, parsed := client.SegmentCounters()
	if reused != 0 || parsed != LookaheadDays {
		t.Fatalf("first fetch: reused=%d parsed=%d, want 0/%d", reused, parsed, LookaheadDays)
	}

	// The window slides by one day, nothing else changed: four shared days
	// reuse their parsed entries, only the new trailing day parses.
	if _, err := client.Fetch(ctx, day.Next()); err != nil {
		t.Fatal(err)
	}
	reused, parsed = client.SegmentCounters()
	if reused != LookaheadDays-1 || parsed != LookaheadDays+1 {
		t.Fatalf("slid fetch: reused=%d parsed=%d, want %d/%d",
			reused, parsed, LookaheadDays-1, LookaheadDays+1)
	}

	// A refetch of an unchanged day takes the 304 path: no body, no
	// segment work at all.
	if _, err := client.Fetch(ctx, day.Next()); err != nil {
		t.Fatal(err)
	}
	if r2, p2 := client.SegmentCounters(); r2 != reused || p2 != parsed {
		t.Fatalf("304 refetch touched segments: reused=%d parsed=%d", r2, p2)
	}

	// One day mutates: exactly that segment re-parses, the rest reuse.
	seedPending(t, store, "newcomer.com", day.AddDays(3))
	got, err := client.Fetch(ctx, day.Next())
	if err != nil {
		t.Fatal(err)
	}
	r3, p3 := client.SegmentCounters()
	if r3 != reused+LookaheadDays-1 || p3 != parsed+1 {
		t.Fatalf("after mutation: reused=%d parsed=%d, want %d/%d",
			r3, p3, reused+LookaheadDays-1, parsed+1)
	}
	found := false
	for _, e := range got {
		found = found || e.Name == "newcomer.com"
	}
	if !found {
		t.Fatal("mutated day's new entry missing from reassembled list")
	}
}

// TestFetchSegmentReuseMatchesFreshParse: the reassembled entries must be
// exactly what a from-scratch parse of the same body produces, for every
// window position.
func TestFetchSegmentReuseMatchesFreshParse(t *testing.T) {
	store, client, day := newEnv(t)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 30; i++ {
		seedPending(t, store, fmt.Sprintf("mix%d.com", i), day.AddDays(rng.Intn(8)))
	}
	fresh, _, _ := newEnvClient(t, store)
	ctx := context.Background()
	for d := 0; d < 4; d++ {
		when := day.AddDays(d)
		got, err := client.Fetch(ctx, when)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Fetch(ctx, when)
		if err != nil {
			t.Fatal(err)
		}
		if string(RenderEntries(got)) != string(RenderEntries(want)) {
			t.Fatalf("day %v: segment-reused entries diverge from fresh parse", when)
		}
		// Mutate between windows so reuse and re-parse interleave.
		seedPending(t, store, fmt.Sprintf("mut%d.com", d), when.AddDays(2))
	}
}

// newEnvClient returns an extra independent client over the same store.
func newEnvClient(t *testing.T, store *registry.Store) (*Client, *Server, simtime.Day) {
	t.Helper()
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 10}
	srv := NewServer(store)
	hc := httptest.NewServer(srv.Handler())
	t.Cleanup(hc.Close)
	client, err := NewClient(hc.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	return client, srv, day
}

// TestClientDeltaCursorDifferential is the tentpole's client-side
// acceptance test at the dropscope layer: a client holding a delta cursor
// (joining at an arbitrary generation) must render every published window
// byte-identically to the server's own /pendingdelete body at every
// checkpoint generation, across seeds, Drop days and re-registration flaps.
func TestClientDeltaCursorDifferential(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			day := simtime.Day{Year: 2018, Month: time.January, Dom: 10}
			clock := simtime.NewSimClock(day.At(9, 0, 0))
			store := registry.NewStore(clock)
			store.AddRegistrar(model.Registrar{IANAID: 1000})

			hub := feed.NewHub(feed.Options{})
			defer hub.Close()
			hub.PrimeFromStore(store)
			store.SetJournal(hub)

			scope := NewServer(store)
			scope.AttachFeed(hub)
			ts := httptest.NewServer(scope.Handler())
			defer ts.Close()

			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				seedPending(t, store, fmt.Sprintf("s%d-%d.com", seed, i), day.AddDays(rng.Intn(4)))
			}
			for i := 0; i < 15; i++ {
				updated := day.AddDays(-30).At(8, 0, 0)
				if _, err := store.SeedAt(fmt.Sprintf("a%d-%d.com", seed, i), 1000,
					updated.AddDate(-1, 0, 0), updated, updated.AddDate(1, 0, 0),
					model.StatusActive, simtime.Day{}); err != nil {
					t.Fatal(err)
				}
			}

			ctx := context.Background()
			var clients []*Client
			addClient := func() {
				c, err := NewClient(ts.URL, nil)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := c.SyncDeltas(ctx); err != nil {
					t.Fatal(err)
				}
				clients = append(clients, c)
			}
			addClient() // joins after initial seeding

			serverBody := func(when simtime.Day) string {
				resp, err := http.Get(ts.URL + "/pendingdelete?date=" + when.String())
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				b, err := io.ReadAll(resp.Body)
				if err != nil {
					t.Fatal(err)
				}
				return string(b)
			}
			checkpoint := func(stage string, when simtime.Day) {
				hub.Quiesce()
				for i, c := range clients {
					if _, err := c.SyncDeltas(ctx); err != nil {
						t.Fatal(err)
					}
					got := string(RenderEntries(c.MirrorWindow(when)))
					if want := serverBody(when); got != want {
						t.Fatalf("%s: client %d window %v diverges:\ncursor-applied:\n%s\nserver:\n%s",
							stage, i, when, got, want)
					}
				}
			}
			checkpoint("initial", day)

			runner := registry.NewDropRunner(store, registry.DefaultDropConfig())
			var purged []string
			for d := 0; d < 4; d++ {
				when := day.AddDays(d)
				clock.Set(when.At(10, 0, 0))

				for i := 0; i < 3; i++ {
					name := fmt.Sprintf("a%d-%d.com", seed, rng.Intn(15))
					// Repeated marks of the same name only move its day.
					if err := store.MarkPendingDelete(name, clock.Now(), when.AddDays(1+rng.Intn(2))); err != nil {
						t.Fatal(err)
					}
				}
				checkpoint("marks", when)

				events, err := runner.Run(when, rng)
				if err != nil {
					t.Fatal(err)
				}
				for _, ev := range events {
					purged = append(purged, ev.Name)
				}
				checkpoint("drop", when)

				// Re-registration flap: caught at the drop, immediately
				// deleted again by its new owner.
				for i := 0; i < 2 && len(purged) > 0; i++ {
					name := purged[len(purged)-1]
					purged = purged[:len(purged)-1]
					if _, err := store.CreateAt(name, 1000, 1, clock.Now()); err != nil {
						t.Fatal(err)
					}
					if i == 0 {
						if err := store.MarkPendingDelete(name, clock.Now(), when.AddDays(1)); err != nil {
							t.Fatal(err)
						}
					}
				}
				checkpoint("reregs", when)

				addClient() // a new client joins at this arbitrary generation
				checkpoint("joined", when.Next())
			}
		})
	}
}
