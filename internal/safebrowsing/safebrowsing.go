// Package safebrowsing provides the maliciousness oracle standing in for the
// Google Safe Browsing API the paper queried nine weeks after each
// re-registration. The oracle serves a simple HTTP lookup API over a label
// set produced by a synthetic labelling model.
//
// The model reproduces the paper's §4.4 observations without asserting any
// causal story: the *majority count* of later-malicious domains sits in the
// huge 0 s delay class (mostly parked domains serving bad ads), while the
// *rate* peaks around 30–60 s delays (~2 %) and stays at 0.4 % for 0 s
// re-registrations, below 0.5 % overall.
package safebrowsing

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LabelModel decides synthetic maliciousness as a function of the
// re-registration delay.
type LabelModel struct {
	// Rate0s applies to delays < 30 s (the paper: 0.4 % at 0 s).
	Rate0s float64
	// RateBurst applies to delays in [30 s, 60 s] (the paper: ≈2 %).
	RateBurst float64
	// RateLate applies to everything slower.
	RateLate float64
}

// DefaultLabelModel returns the calibrated rates.
func DefaultLabelModel() LabelModel {
	return LabelModel{Rate0s: 0.004, RateBurst: 0.02, RateLate: 0.005}
}

// Label draws a maliciousness flag for a re-registration with the given
// delay.
func (m LabelModel) Label(delay time.Duration, rng *rand.Rand) bool {
	var p float64
	switch {
	case delay < 30*time.Second:
		p = m.Rate0s
	case delay <= 60*time.Second:
		p = m.RateBurst
	default:
		p = m.RateLate
	}
	return rng.Float64() < p
}

// Oracle stores labels and serves lookups. Safe for concurrent use.
type Oracle struct {
	serveErr atomic.Value // error from the background Serve goroutine

	mu     sync.RWMutex
	labels map[string]bool
	http   *http.Server
	ln     net.Listener
}

// NewOracle returns an empty Oracle.
func NewOracle() *Oracle {
	o := &Oracle{labels: make(map[string]bool)}
	mux := http.NewServeMux()
	mux.HandleFunc("/v4/lookup", o.handleLookup)
	o.http = &http.Server{Handler: mux}
	return o
}

// Set records a domain's label.
func (o *Oracle) Set(name string, malicious bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.labels[strings.ToLower(name)] = malicious
}

// Lookup returns the stored label; absent domains are benign.
func (o *Oracle) Lookup(name string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.labels[strings.ToLower(name)]
}

// Count returns the number of labelled domains.
func (o *Oracle) Count() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.labels)
}

// Listen serves the lookup API on addr until Close.
func (o *Oracle) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("safebrowsing: listen %s: %w", addr, err)
	}
	o.ln = ln
	go func() {
		if err := o.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			o.serveErr.Store(fmt.Errorf("safebrowsing: serve: %w", err))
		}
	}()
	return ln.Addr(), nil
}

// ServeErr reports a failure of the background serve loop started by
// Listen, nil while serving normally or after a clean Close.
func (o *Oracle) ServeErr() error {
	if err, ok := o.serveErr.Load().(error); ok {
		return err
	}
	return nil
}

// Close stops the HTTP server.
func (o *Oracle) Close() error { return o.http.Close() }

type lookupResponse struct {
	Name      string `json:"name"`
	Malicious bool   `json:"malicious"`
}

func (o *Oracle) handleLookup(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	if name == "" {
		http.Error(w, "missing name parameter", http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(lookupResponse{Name: name, Malicious: o.Lookup(name)})
}

// Client queries a remote Oracle.
type Client struct {
	base *url.URL
	http *http.Client
}

// NewClient returns a Client for the oracle at baseURL.
func NewClient(baseURL string, httpClient *http.Client) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("safebrowsing: parse base URL: %w", err)
	}
	if httpClient == nil {
		httpClient = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{base: u, http: httpClient}, nil
}

// Lookup queries one domain's label.
func (c *Client) Lookup(name string) (bool, error) {
	u := *c.base
	u.Path = "/v4/lookup"
	u.RawQuery = url.Values{"name": {name}}.Encode()
	resp, err := c.http.Get(u.String())
	if err != nil {
		return false, fmt.Errorf("safebrowsing: GET %s: %w", u.String(), err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("safebrowsing: HTTP %d for %s", resp.StatusCode, name)
	}
	var lr lookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return false, fmt.Errorf("safebrowsing: decode response: %w", err)
	}
	return lr.Malicious, nil
}
