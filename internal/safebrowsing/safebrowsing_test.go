package safebrowsing

import (
	"math/rand"
	"testing"
	"time"
)

func TestOracleSetLookup(t *testing.T) {
	o := NewOracle()
	o.Set("bad.com", true)
	o.Set("good.com", false)
	if !o.Lookup("bad.com") || o.Lookup("good.com") || o.Lookup("unknown.com") {
		t.Fatal("lookup wrong")
	}
	if o.Count() != 2 {
		t.Fatalf("Count = %d", o.Count())
	}
}

func TestOracleCaseInsensitive(t *testing.T) {
	o := NewOracle()
	o.Set("Bad.COM", true)
	if !o.Lookup("bad.com") {
		t.Fatal("case-insensitive lookup failed")
	}
}

func TestOracleHTTP(t *testing.T) {
	o := NewOracle()
	o.Set("evil.com", true)
	addr, err := o.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	c, err := NewClient("http://"+addr.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	mal, err := c.Lookup("evil.com")
	if err != nil || !mal {
		t.Fatalf("lookup evil: %v %v", mal, err)
	}
	mal, err = c.Lookup("benign.com")
	if err != nil || mal {
		t.Fatalf("lookup benign: %v %v", mal, err)
	}
}

func TestLabelModelRates(t *testing.T) {
	m := DefaultLabelModel()
	rng := rand.New(rand.NewSource(1))
	count := func(delay time.Duration, n int) float64 {
		hits := 0
		for i := 0; i < n; i++ {
			if m.Label(delay, rng) {
				hits++
			}
		}
		return float64(hits) / float64(n)
	}
	const n = 200000
	if got := count(0, n); got < 0.002 || got > 0.006 {
		t.Fatalf("0s rate = %f, want ≈0.004", got)
	}
	if got := count(45*time.Second, n); got < 0.015 || got > 0.025 {
		t.Fatalf("45s rate = %f, want ≈0.02", got)
	}
	if got := count(3*time.Hour, n); got < 0.003 || got > 0.007 {
		t.Fatalf("3h rate = %f, want ≈0.005", got)
	}
}

func TestLabelModelBandEdges(t *testing.T) {
	m := LabelModel{Rate0s: 0, RateBurst: 1, RateLate: 0}
	rng := rand.New(rand.NewSource(1))
	if m.Label(29*time.Second, rng) {
		t.Fatal("29s fell into burst band")
	}
	if !m.Label(30*time.Second, rng) || !m.Label(60*time.Second, rng) {
		t.Fatal("band edges not inclusive")
	}
	if m.Label(61*time.Second, rng) {
		t.Fatal("61s fell into burst band")
	}
}

// TestOracleServeErrSurfaced checks background serve failures are recorded
// and a clean Close records nothing.
func TestOracleServeErrSurfaced(t *testing.T) {
	o := NewOracle()
	if _, err := o.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	o.ln.Close()
	deadline := time.Now().Add(2 * time.Second)
	for o.ServeErr() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if o.ServeErr() == nil {
		t.Fatal("ServeErr not recorded after listener failure")
	}
	o.Close()

	clean := NewOracle()
	if _, err := clean.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := clean.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := clean.ServeErr(); err != nil {
		t.Fatalf("clean Close recorded ServeErr: %v", err)
	}
}
