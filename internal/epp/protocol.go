// Package epp implements the provisioning protocol registrars use to talk to
// the registry: a length-framed JSON command protocol over TCP modelled on
// EPP (RFC 5730). It is the channel drop-catch services hammer with
// speculative create commands during the Drop, so the server enforces
// per-accreditation rate limits — the resource that makes holding many
// accreditations worthwhile (the paper: three services control 75 % of all
// registrar accreditations).
package epp

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"
)

// MaxFrame is the largest accepted frame body. Oversized frames indicate a
// broken or hostile peer and abort the connection.
const MaxFrame = 1 << 16

// Result codes, following the EPP convention: 1xxx success, 2xxx failure.
const (
	CodeOK              = 1000
	CodeNoMessages      = 1300
	CodeAckToDequeue    = 1301
	CodeLoggedOut       = 1500
	CodeUnknownCommand  = 2000
	CodeParamRange      = 2004
	CodeNotLoggedIn     = 2002
	CodeAuthError       = 2200
	CodeAuthorization   = 2201
	CodeBadAuthInfo     = 2202
	CodeObjectExists    = 2302
	CodeObjectNotFound  = 2303
	CodeStatusProhibits = 2304
	CodeRateLimited     = 2502
	CodeCommandFailed   = 2400
)

// Command names accepted by the server.
const (
	CmdLogin    = "login"
	CmdLogout   = "logout"
	CmdCheck    = "check"
	CmdInfo     = "info"
	CmdCreate   = "create"
	CmdRenew    = "renew"
	CmdUpdate   = "update"
	CmdDelete   = "delete"
	CmdPoll     = "poll"
	CmdTransfer = "transfer"
)

// Poll operations (RFC 5730 §2.9.2.3).
const (
	PollOpRequest = "req"
	PollOpAck     = "ack"
)

// Request is one client command frame.
type Request struct {
	Cmd       string `json:"cmd"`
	Registrar int    `json:"registrar,omitempty"` // login only
	Token     string `json:"token,omitempty"`     // login only
	Name      string `json:"name,omitempty"`
	Years     int    `json:"years,omitempty"`
	// PollOp and MsgID drive the poll command: op "req" fetches the oldest
	// queued message, op "ack" dequeues it by ID.
	PollOp string `json:"pollOp,omitempty"`
	MsgID  uint64 `json:"msgID,omitempty"`
	// AuthInfo is the transfer authorisation code the registrant obtained
	// from the losing registrar.
	AuthInfo string `json:"authInfo,omitempty"`
}

// DomainInfo is the domain representation carried in responses.
type DomainInfo struct {
	ID        uint64    `json:"id"`
	Name      string    `json:"name"`
	Registrar int       `json:"registrar"`
	Created   time.Time `json:"created"`
	Updated   time.Time `json:"updated"`
	Expiry    time.Time `json:"expiry"`
	Status    string    `json:"status"`
	// AuthInfo is included in info responses only when the requester is the
	// sponsoring registrar (RFC 5731 §3.1.2 semantics).
	AuthInfo string `json:"authInfo,omitempty"`
}

// Response is one server reply frame.
type Response struct {
	Code      int         `json:"code"`
	Msg       string      `json:"msg"`
	Available *bool       `json:"available,omitempty"` // check only
	Domain    *DomainInfo `json:"domain,omitempty"`    // info/create
	// Message and MsgCount carry the poll channel.
	Message  *Message `json:"message,omitempty"`
	MsgCount int      `json:"msgCount,omitempty"`
	// ServerTime lets clients observe registry time; drop-catch tooling uses
	// it to synchronise with the Drop.
	ServerTime time.Time `json:"serverTime"`
}

// OK reports whether the response is a success (1xxx) result.
func (r *Response) OK() bool { return r.Code >= 1000 && r.Code < 2000 }

// Err converts a failure response into an error, nil for successes.
func (r *Response) Err() error {
	if r.OK() {
		return nil
	}
	return &ResultError{Code: r.Code, Msg: r.Msg}
}

// ResultError is a protocol-level failure returned by the server.
type ResultError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *ResultError) Error() string { return fmt.Sprintf("epp: %d %s", e.Code, e.Msg) }

// IsCode reports whether err is a ResultError carrying code.
func IsCode(err error, code int) bool {
	var re *ResultError
	return errors.As(err, &re) && re.Code == code
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("epp: marshal frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("epp: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("epp: write frame header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("epp: write frame body: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return io.EOF
		}
		return fmt.Errorf("epp: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("epp: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("epp: read frame body: %w", err)
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("epp: unmarshal frame: %w", err)
	}
	return nil
}
