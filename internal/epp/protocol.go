// Package epp implements the provisioning protocol registrars use to talk to
// the registry: a length-framed JSON command protocol over TCP modelled on
// EPP (RFC 5730). It is the channel drop-catch services hammer with
// speculative create commands during the Drop, so the server enforces
// per-accreditation rate limits — the resource that makes holding many
// accreditations worthwhile (the paper: three services control 75 % of all
// registrar accreditations).
package epp

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// MaxFrame is the largest accepted frame body. Oversized frames indicate a
// broken or hostile peer and abort the connection.
const MaxFrame = 1 << 16

// Result codes, following the EPP convention: 1xxx success, 2xxx failure.
const (
	CodeOK              = 1000
	CodeNoMessages      = 1300
	CodeAckToDequeue    = 1301
	CodeLoggedOut       = 1500
	CodeUnknownCommand  = 2000
	CodeParamRange      = 2004
	CodeNotLoggedIn     = 2002
	CodeAuthError       = 2200
	CodeAuthorization   = 2201
	CodeBadAuthInfo     = 2202
	CodeObjectExists    = 2302
	CodeObjectNotFound  = 2303
	CodeStatusProhibits = 2304
	CodePolicyViolation = 2308
	CodeRateLimited     = 2502
	CodeCommandFailed   = 2400
)

// Command names accepted by the server.
const (
	CmdLogin    = "login"
	CmdLogout   = "logout"
	CmdCheck    = "check"
	CmdInfo     = "info"
	CmdCreate   = "create"
	CmdRenew    = "renew"
	CmdUpdate   = "update"
	CmdDelete   = "delete"
	CmdPoll     = "poll"
	CmdTransfer = "transfer"
)

// Poll operations (RFC 5730 §2.9.2.3).
const (
	PollOpRequest = "req"
	PollOpAck     = "ack"
)

// Request is one client command frame.
type Request struct {
	Cmd       string `json:"cmd"`
	Registrar int    `json:"registrar,omitempty"` // login only
	Token     string `json:"token,omitempty"`     // login only
	Name      string `json:"name,omitempty"`
	Years     int    `json:"years,omitempty"`
	// PollOp and MsgID drive the poll command: op "req" fetches the oldest
	// queued message, op "ack" dequeues it by ID.
	PollOp string `json:"pollOp,omitempty"`
	MsgID  uint64 `json:"msgID,omitempty"`
	// AuthInfo is the transfer authorisation code the registrant obtained
	// from the losing registrar.
	AuthInfo string `json:"authInfo,omitempty"`
}

// DomainInfo is the domain representation carried in responses.
type DomainInfo struct {
	ID        uint64    `json:"id"`
	Name      string    `json:"name"`
	Registrar int       `json:"registrar"`
	Created   time.Time `json:"created"`
	Updated   time.Time `json:"updated"`
	Expiry    time.Time `json:"expiry"`
	Status    string    `json:"status"`
	// AuthInfo is included in info responses only when the requester is the
	// sponsoring registrar (RFC 5731 §3.1.2 semantics).
	AuthInfo string `json:"authInfo,omitempty"`
}

// Response is one server reply frame.
type Response struct {
	Code      int         `json:"code"`
	Msg       string      `json:"msg"`
	Available *bool       `json:"available,omitempty"` // check only
	Domain    *DomainInfo `json:"domain,omitempty"`    // info/create
	// Message and MsgCount carry the poll channel.
	Message  *Message `json:"message,omitempty"`
	MsgCount int      `json:"msgCount,omitempty"`
	// ServerTime lets clients observe registry time; drop-catch tooling uses
	// it to synchronise with the Drop.
	ServerTime time.Time `json:"serverTime"`
}

// OK reports whether the response is a success (1xxx) result.
func (r *Response) OK() bool { return r.Code >= 1000 && r.Code < 2000 }

// Err converts a failure response into an error, nil for successes.
func (r *Response) Err() error {
	if r.OK() {
		return nil
	}
	return &ResultError{Code: r.Code, Msg: r.Msg}
}

// ResultError is a protocol-level failure returned by the server.
type ResultError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *ResultError) Error() string { return fmt.Sprintf("epp: %d %s", e.Code, e.Msg) }

// ResultCode reports the wire result code. It satisfies the structural
// interface { ResultCode() int } that internal/loadgen uses for its
// per-code breakdown without importing this package.
func (e *ResultError) ResultCode() int { return e.Code }

// IsCode reports whether err is a ResultError carrying code.
func IsCode(err error, code int) bool {
	var re *ResultError
	return errors.As(err, &re) && re.Code == code
}

// framePool holds scratch buffers for frame encoding. Buffers start with the
// 4-byte header reserved and are naturally bounded: a frame never exceeds
// MaxFrame+4 bytes, so pooled capacity stays small.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 1024)
	return &b
}}

// WriteFrame writes one length-prefixed JSON frame as a single coalesced
// write (header and body in one syscall — under a create storm the second
// syscall per frame is pure overhead). Requests and Responses take the
// allocation-free append encoders; any other value falls back to
// encoding/json. Byte output is identical either way.
func WriteFrame(w io.Writer, v any) error {
	bp := framePool.Get().(*[]byte)
	buf := append((*bp)[:0], 0, 0, 0, 0) // header placeholder
	switch t := v.(type) {
	case *Request:
		buf = appendRequest(buf, t)
	case *Response:
		var ok bool
		if buf, ok = appendResponse(buf, t); !ok {
			// A time field json.Marshal itself cannot encode; delegate so
			// the caller sees the canonical error.
			framePool.Put(bp)
			_, err := json.Marshal(v)
			return fmt.Errorf("epp: marshal frame: %w", err)
		}
	default:
		body, err := json.Marshal(v)
		if err != nil {
			framePool.Put(bp)
			return fmt.Errorf("epp: marshal frame: %w", err)
		}
		buf = append(buf, body...)
	}
	err := writeRaw(w, buf)
	*bp = buf[:0]
	framePool.Put(bp)
	return err
}

// writeRaw length-stamps and writes a frame buffer whose first 4 bytes are
// reserved for the header.
func writeRaw(w io.Writer, buf []byte) error {
	body := len(buf) - 4
	if body > MaxFrame {
		return fmt.Errorf("epp: frame of %d bytes exceeds limit", body)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(body))
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("epp: write frame: %w", err)
	}
	return nil
}

// ReadFrame reads one length-prefixed JSON frame into v. It allocates a
// fresh body buffer per call; the connection loops use a frameReader, which
// reuses one buffer for the life of the connection.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	n, err := readHeader(r, hdr[:])
	if err != nil {
		return err
	}
	body := make([]byte, n)
	return readBody(r, body, v)
}

// readHeader reads and validates the 4-byte length prefix.
func readHeader(r io.Reader, hdr []byte) (uint32, error) {
	if _, err := io.ReadFull(r, hdr); err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.EOF
		}
		return 0, fmt.Errorf("epp: read frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return 0, fmt.Errorf("epp: frame of %d bytes exceeds limit", n)
	}
	return n, nil
}

func readBody(r io.Reader, body []byte, v any) error {
	if _, err := io.ReadFull(r, body); err != nil {
		return fmt.Errorf("epp: read frame body: %w", err)
	}
	return decodeFrame(body, v, nil)
}

// decodeFrame unmarshals a frame body: the two wire types take the
// specialised decoders (scratch, when non-nil, is the caller's reusable
// unescape buffer), anything else goes through encoding/json.
func decodeFrame(body []byte, v any, scratch *[]byte) error {
	cur := jsonCursor{b: body}
	if scratch != nil {
		cur.scratch = *scratch
	}
	var err error
	switch t := v.(type) {
	case *Request:
		err = decodeRequest(&cur, t)
	case *Response:
		err = decodeResponse(&cur, t)
	default:
		if jerr := json.Unmarshal(body, v); jerr != nil {
			return fmt.Errorf("epp: unmarshal frame: %w", jerr)
		}
		return nil
	}
	if scratch != nil {
		*scratch = cur.scratch
	}
	return err
}

// readerPool recycles the bufio layer of connection frame readers; 4 KiB
// covers every frame the protocol's command mix produces, so a frame usually
// costs one read syscall instead of two.
var readerPool = sync.Pool{New: func() any {
	return bufio.NewReaderSize(nil, 4096)
}}

// frameReader decodes frames from one connection with a pooled buffered
// reader and a per-connection body scratch buffer that is reused across
// frames — the read-side half of making the Drop-second hot path
// allocation-free. Not safe for concurrent use; each connection owns one.
type frameReader struct {
	br      *bufio.Reader
	body    []byte
	scratch []byte // unescape buffer shared across this connection's frames
}

func newFrameReader(r io.Reader) *frameReader {
	br := readerPool.Get().(*bufio.Reader)
	br.Reset(r)
	return &frameReader{br: br}
}

// release returns the bufio layer to the pool. The frameReader must not be
// used afterwards.
func (fr *frameReader) release() {
	fr.br.Reset(nil)
	readerPool.Put(fr.br)
	fr.br = nil
}

func (fr *frameReader) read(v any) error {
	var hdr [4]byte
	n, err := readHeader(fr.br, hdr[:])
	if err != nil {
		return err
	}
	if uint32(cap(fr.body)) < n {
		fr.body = make([]byte, n)
	}
	body := fr.body[:n]
	if _, err := io.ReadFull(fr.br, body); err != nil {
		return fmt.Errorf("epp: read frame body: %w", err)
	}
	return decodeFrame(body, v, &fr.scratch)
}
