package epp

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

func TestPollQueueFIFOAndAck(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	q := NewPollQueue(clock, 0)
	q.Enqueue(1000, "first")
	clock.Advance(time.Second)
	q.Enqueue(1000, "second")

	msg, count, ok := q.Peek(1000)
	if !ok || msg.Text != "first" || count != 2 {
		t.Fatalf("peek: %+v %d %v", msg, count, ok)
	}
	// Ack out of order is rejected.
	if err := q.Ack(1000, msg.ID+1); err == nil {
		t.Fatal("out-of-order ack accepted")
	}
	if err := q.Ack(1000, msg.ID); err != nil {
		t.Fatal(err)
	}
	msg, count, ok = q.Peek(1000)
	if !ok || msg.Text != "second" || count != 1 {
		t.Fatalf("after ack: %+v %d %v", msg, count, ok)
	}
	if err := q.Ack(1000, msg.ID); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := q.Peek(1000); ok {
		t.Fatal("queue not empty")
	}
	if err := q.Ack(1000, 1); err == nil {
		t.Fatal("ack on empty queue accepted")
	}
}

func TestPollQueueCapDropsOldest(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	q := NewPollQueue(clock, 3)
	for i := 0; i < 5; i++ {
		q.Enqueue(7, string(rune('a'+i)))
	}
	if q.Len(7) != 3 {
		t.Fatalf("len = %d", q.Len(7))
	}
	msg, _, _ := q.Peek(7)
	if msg.Text != "c" {
		t.Fatalf("head = %q, want oldest surviving", msg.Text)
	}
}

func TestPollQueueIsolatedPerRegistrar(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	q := NewPollQueue(clock, 0)
	q.Enqueue(1, "for one")
	if q.Len(2) != 0 {
		t.Fatal("message leaked across registrars")
	}
}

func TestPollOverEPP(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 12, 0, 0, 0, time.UTC))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 7001, Name: "Sponsor"})
	poll := NewPollQueue(clock, 0)
	store.SetObserver(poll)
	srv := NewServer(store, clock, ServerConfig{
		Credentials: map[int]string{7001: "tok"},
		Poll:        poll,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login(7001, "tok"); err != nil {
		t.Fatal(err)
	}

	// Empty queue → no messages.
	msg, _, err := c.Poll()
	if err != nil || msg != nil {
		t.Fatalf("empty poll: %+v %v", msg, err)
	}

	// Drive a registration through deletion; the sponsor must be notified
	// of every transition and the purge.
	if _, err := c.Create("notify.com", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("notify.com"); err != nil { // → redemption
		t.Fatal(err)
	}
	day := simtime.DayOf(clock.Now()).AddDays(35)
	if err := store.MarkPendingDelete("notify.com", time.Time{}, day); err != nil {
		t.Fatal(err)
	}
	runner := registry.NewDropRunner(store, registry.DropConfig{StartHour: 19, BaseRatePerSec: 10})
	if _, err := runner.Run(day, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}

	var texts []string
	for {
		msg, count, err := c.Poll()
		if err != nil {
			t.Fatal(err)
		}
		if msg == nil {
			break
		}
		if count < 1 {
			t.Fatalf("count = %d with message present", count)
		}
		texts = append(texts, msg.Text)
		if err := c.AckMessage(msg.ID); err != nil {
			t.Fatal(err)
		}
	}
	joined := strings.Join(texts, " | ")
	for _, want := range []string{"active -> redemptionPeriod", "redemptionPeriod -> pendingDelete", "deleted (drop rank 0)"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing notification %q in %q", want, joined)
		}
	}
}

func TestPollWithoutQueueConfigured(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	c := dialLogin(t, addr, 7001, "tok-a")
	_, _, err := c.Poll()
	if !IsCode(err, CodeUnknownCommand) {
		t.Fatalf("poll without queue: %v", err)
	}
}

func TestPollBadOp(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 12, 0, 0, 0, time.UTC))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 7001})
	srv := NewServer(store, clock, ServerConfig{
		Credentials: map[int]string{7001: "tok"},
		Poll:        NewPollQueue(clock, 0),
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login(7001, "tok"); err != nil {
		t.Fatal(err)
	}
	_, err = c.roundTrip(&Request{Cmd: CmdPoll, PollOp: "bogus"})
	if !IsCode(err, CodeParamRange) {
		t.Fatalf("bad poll op: %v", err)
	}
}
