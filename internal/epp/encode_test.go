package epp

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// hostileStrings exercise every escape class of the JSON string encoder:
// quotes, backslashes, control characters, the HTML escapes, invalid UTF-8,
// and the JavaScript line separators.
var hostileStrings = []string{
	"",
	"plain ascii",
	`quote " backslash \ slash /`,
	"tab\tnewline\ncarriage\rreturn",
	"nul\x00bell\x07esc\x1b",
	"html <script>&amp;</script>",
	"unicode é世界 emoji \U0001F600",
	"invalid utf8 \xff\xfe trailing",
	"line sep   para sep  ",
	"mixed \x01<\xc3\x28>& \x7f", // \xc3\x28 is an invalid 2-byte sequence
}

func responseShapes() map[string]*Response {
	now := time.Date(2018, time.March, 8, 19, 0, 0, 0, time.UTC)
	frac := time.Date(2018, time.March, 8, 19, 0, 0, 123456789, time.UTC)
	offset := time.Date(2018, time.March, 8, 21, 30, 0, 0, time.FixedZone("", 2*3600+1800))
	// MarshalJSON truncates sub-minute offset components via the "Z07:00"
	// layout rather than erroring; the encoders must match that quirk.
	subMinute := time.Date(2018, time.March, 8, 19, 0, 0, 0, time.FixedZone("", 3601))
	avail := true
	unavail := false
	return map[string]*Response{
		"minimal": {Code: CodeOK, Msg: "command completed successfully", ServerTime: now},
		"zeroes":  {},
		"check/available": {
			Code: CodeOK, Msg: "command completed successfully",
			Available: &avail, ServerTime: now,
		},
		"check/taken": {
			Code: CodeOK, Msg: "command completed successfully",
			Available: &unavail, ServerTime: now,
		},
		"create/domain": {
			Code: CodeOK, Msg: "command completed successfully",
			Domain: &DomainInfo{
				ID: 17, Name: "contested00.com", Registrar: 1007,
				Created: now, Updated: frac, Expiry: now.AddDate(1, 0, 0),
				Status: "active",
			},
			ServerTime: now,
		},
		"info/authinfo": {
			Code: CodeOK, Msg: "command completed successfully",
			Domain: &DomainInfo{
				ID: 9, Name: "held.net", Registrar: 1000,
				Created: offset, Updated: now, Expiry: now.AddDate(5, 0, 0),
				Status: "pendingDelete", AuthInfo: "AX-3k9fmd02xq1z",
			},
			ServerTime: frac,
		},
		"poll/message": {
			Code: CodeAckToDequeue, Msg: "command completed successfully; ack to dequeue",
			Message:  &Message{ID: 441, Time: now, Text: "domain held.net deleted (drop rank 3)"},
			MsgCount: 12, ServerTime: now,
		},
		"poll/negative-count": {
			Code: CodeOK, Msg: "ok", MsgCount: -3, ServerTime: now,
		},
		"sub-minute-offset": {
			Code: CodeOK, Msg: "ok", ServerTime: subMinute,
		},
		"failure": {
			Code: CodeObjectExists, Msg: "object exists", ServerTime: now,
		},
	}
}

func requestShapes() map[string]*Request {
	return map[string]*Request{
		"login":    {Cmd: CmdLogin, Registrar: 1007, Token: "token-1007"},
		"logout":   {Cmd: CmdLogout},
		"check":    {Cmd: CmdCheck, Name: "contested00.com"},
		"create":   {Cmd: CmdCreate, Name: "contested00.com", Years: 3},
		"poll/req": {Cmd: CmdPoll, PollOp: PollOpRequest},
		"poll/ack": {Cmd: CmdPoll, PollOp: PollOpAck, MsgID: 18446744073709551615},
		"transfer": {Cmd: CmdTransfer, Name: "held.net", AuthInfo: "AX-3k9fmd02xq1z"},
		"zeroes":   {},
		"negative": {Cmd: CmdCreate, Name: "x.com", Years: -4, Registrar: -9},
	}
}

// TestAppendEncodersMatchJSON pins the append encoders to encoding/json,
// byte for byte, across every response shape the server produces (including
// poll messages and authInfo-bearing info responses) and across hostile
// string content.
func TestAppendEncodersMatchJSON(t *testing.T) {
	for name, resp := range responseShapes() {
		t.Run("response/"+name, func(t *testing.T) {
			want, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			got, ok := appendResponse(nil, resp)
			if !ok {
				t.Fatalf("appendResponse refused an encodable response")
			}
			if !bytes.Equal(got, want) {
				t.Errorf("appendResponse drift:\n got %s\nwant %s", got, want)
			}
		})
	}
	for name, req := range requestShapes() {
		t.Run("request/"+name, func(t *testing.T) {
			want, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			if got := appendRequest(nil, req); !bytes.Equal(got, want) {
				t.Errorf("appendRequest drift:\n got %s\nwant %s", got, want)
			}
		})
	}
	for _, s := range hostileStrings {
		resp := &Response{Code: CodeCommandFailed, Msg: s,
			Domain:  &DomainInfo{Name: s, Status: s, AuthInfo: s},
			Message: &Message{ID: 1, Text: s},
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := appendResponse(nil, resp)
		if !ok {
			t.Fatalf("appendResponse refused hostile string %q", s)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("string %q drift:\n got %s\nwant %s", s, got, want)
		}
		req := &Request{Cmd: s, Token: s, Name: s, AuthInfo: s}
		want, err = json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		if got := appendRequest(nil, req); !bytes.Equal(got, want) {
			t.Errorf("request string %q drift:\n got %s\nwant %s", s, got, want)
		}
	}
}

// TestAppendTimeFallback: times MarshalJSON rejects must make appendResponse
// decline, and WriteFrame must surface the same condition as an error (the
// encoding/json fallback path).
func TestAppendTimeFallback(t *testing.T) {
	bad := []time.Time{
		time.Date(10001, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(-5, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2018, 1, 1, 0, 0, 0, 0, time.FixedZone("wide", 24*3600)),
		time.Date(2018, 1, 1, 0, 0, 0, 0, time.FixedZone("negwide", -24*3600)),
	}
	for _, ts := range bad {
		resp := &Response{Code: CodeOK, Msg: "x", ServerTime: ts}
		if _, err := json.Marshal(resp); err == nil {
			t.Fatalf("expected json.Marshal to reject %v", ts)
		}
		if _, ok := appendResponse(nil, resp); ok {
			t.Errorf("appendResponse accepted %v, json.Marshal rejects it", ts)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, resp); err == nil {
			t.Errorf("WriteFrame accepted unencodable time %v", ts)
		}
	}
}

// TestWriteFrameSingleWrite: the frame must reach the connection as one
// write (header and body coalesced) — the storm optimisation that halves
// syscalls per response.
func TestWriteFrameSingleWrite(t *testing.T) {
	var w countingWriter
	if err := WriteFrame(&w, &Request{Cmd: CmdCheck, Name: "a.com"}); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("request frame took %d writes, want 1", w.writes)
	}
	w = countingWriter{}
	if err := WriteFrame(&w, &Response{Code: CodeOK, Msg: "ok"}); err != nil {
		t.Fatal(err)
	}
	if w.writes != 1 {
		t.Fatalf("response frame took %d writes, want 1", w.writes)
	}
}

type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

// TestDecodeMatchesJSONUnmarshal: the specialised decoders must agree with
// encoding/json on every frame the encoders produce.
func TestDecodeMatchesJSONUnmarshal(t *testing.T) {
	for name, resp := range responseShapes() {
		t.Run("response/"+name, func(t *testing.T) {
			body, err := json.Marshal(resp)
			if err != nil {
				t.Fatal(err)
			}
			var viaJSON, viaCursor Response
			if err := json.Unmarshal(body, &viaJSON); err != nil {
				t.Fatal(err)
			}
			if err := decodeFrame(body, &viaCursor, nil); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(viaJSON, viaCursor) {
				t.Errorf("decode drift:\n got %+v\nwant %+v", viaCursor, viaJSON)
			}
		})
	}
	for name, req := range requestShapes() {
		t.Run("request/"+name, func(t *testing.T) {
			body, err := json.Marshal(req)
			if err != nil {
				t.Fatal(err)
			}
			var viaJSON, viaCursor Request
			if err := json.Unmarshal(body, &viaJSON); err != nil {
				t.Fatal(err)
			}
			if err := decodeFrame(body, &viaCursor, nil); err != nil {
				t.Fatal(err)
			}
			if viaJSON != viaCursor {
				t.Errorf("decode drift:\n got %+v\nwant %+v", viaCursor, viaJSON)
			}
		})
	}
}

// TestDecodeToleratesForeignJSON: whitespace, unknown fields, reordered
// fields and nulls — shapes a non-Go peer could legally send.
func TestDecodeToleratesForeignJSON(t *testing.T) {
	body := []byte("  {\n  \"extra\": {\"deep\": [1, \"two\", null, {\"x\": false}]},\n" +
		"  \"name\": \"spaced.com\",\n  \"years\": 2,\n  \"cmd\": \"create\",\n" +
		"  \"future\": null\n}  ")
	var req Request
	if err := decodeFrame(body, &req, nil); err != nil {
		t.Fatal(err)
	}
	want := Request{Cmd: CmdCreate, Name: "spaced.com", Years: 2}
	if req != want {
		t.Fatalf("req = %+v, want %+v", req, want)
	}

	body = []byte(`{"serverTime":"2018-03-08T19:00:00Z","msg":"hi é 😀","code":1000,"available":null,"domain":null}`)
	var resp Response
	if err := decodeFrame(body, &resp, nil); err != nil {
		t.Fatal(err)
	}
	if resp.Code != CodeOK || resp.Msg != "hi é 😀" || resp.Available != nil || resp.Domain != nil {
		t.Fatalf("resp = %+v", resp)
	}
	if !resp.ServerTime.Equal(time.Date(2018, time.March, 8, 19, 0, 0, 0, time.UTC)) {
		t.Fatalf("serverTime = %v", resp.ServerTime)
	}
}

// TestDecodeRejectsMalformed: hostile bodies must error, not panic or
// silently succeed.
func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []string{
		``, `{`, `}`, `[]`, `{"cmd"}`, `{"cmd":}`, `{"cmd":"check"`,
		`{"cmd":"check",}`, `{"cmd":"check"}{`, `{"cmd":"check"} x`,
		`{"years":"notanint"}`, `{"years":1e3}`, `{"years":1.5}`,
		`{"msgID":-1}`, `{"cmd":"a\q"}`, `{"cmd":"a\u12"}`,
		`{"cmd":"` + "\x01" + `"}`, `{"registrar":99999999999999999999999}`,
	}
	for _, body := range cases {
		var req Request
		if err := decodeFrame([]byte(body), &req, nil); err == nil {
			t.Errorf("decodeFrame accepted %q", body)
		}
	}
	var resp Response
	if err := decodeFrame([]byte(`{"serverTime":"not a time"}`), &resp, nil); err == nil {
		t.Error("decodeFrame accepted a bad timestamp")
	}
}

// TestMessagesInterned: decoding a canonical result message must reuse the
// interned constant rather than allocating a copy per frame.
func TestMessagesInterned(t *testing.T) {
	body, err := json.Marshal(&Response{Code: CodeObjectExists, Msg: msgObjectExists})
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := decodeFrame(body, &resp, nil); err != nil {
		t.Fatal(err)
	}
	if resp.Msg != msgObjectExists {
		t.Fatalf("msg = %q", resp.Msg)
	}
	allocs := testing.AllocsPerRun(100, func() {
		var r Response
		if err := decodeFrame(body, &r, nil); err != nil {
			t.Fatal(err)
		}
	})
	// One jsonCursor-free decode of a domain-less failure response should
	// stay tiny: no string copies for the interned message.
	if allocs > 1 {
		t.Fatalf("decode of interned failure response allocates %.0f times", allocs)
	}
}
