package epp

import "sync/atomic"

// Metrics is a point-in-time snapshot of a server's per-command and
// per-result-code counters, suitable for the expvar debug surface. Maps hold
// only non-zero entries.
type Metrics struct {
	// Conns counts connections ever served (TCP accepts plus ServeConn).
	Conns uint64
	// Commands counts dispatched requests by command name; unrecognised
	// commands land under "other".
	Commands map[string]uint64
	// Codes counts responses by EPP result code; codes outside the protocol
	// constant set land under -1.
	Codes map[int]uint64
}

// knownCommands and knownCodes fix the counter key space at construction so
// the record path is lock-free atomic increments with no map writes.
var knownCommands = []string{
	CmdLogin, CmdLogout, CmdCheck, CmdInfo, CmdCreate,
	CmdRenew, CmdUpdate, CmdDelete, CmdPoll, CmdTransfer,
}

var knownCodes = []int{
	CodeOK, CodeNoMessages, CodeAckToDequeue, CodeLoggedOut,
	CodeUnknownCommand, CodeParamRange, CodeNotLoggedIn, CodeAuthError,
	CodeAuthorization, CodeBadAuthInfo, CodeObjectExists, CodeObjectNotFound,
	CodeStatusProhibits, CodeRateLimited, CodeCommandFailed,
}

// serverCounters is the hot-path side of Metrics: one atomic per known
// command and result code, built once at NewServer.
type serverCounters struct {
	conns    atomic.Uint64
	commands map[string]*atomic.Uint64
	codes    map[int]*atomic.Uint64
	cmdOther atomic.Uint64
	cdOther  atomic.Uint64
}

func newServerCounters() *serverCounters {
	c := &serverCounters{
		commands: make(map[string]*atomic.Uint64, len(knownCommands)),
		codes:    make(map[int]*atomic.Uint64, len(knownCodes)),
	}
	for _, cmd := range knownCommands {
		c.commands[cmd] = new(atomic.Uint64)
	}
	for _, code := range knownCodes {
		c.codes[code] = new(atomic.Uint64)
	}
	return c
}

// record counts one dispatched command and its outcome. Reading a fixed map
// is safe concurrently; only the values mutate, atomically.
func (c *serverCounters) record(cmd string, code int) {
	if ctr, ok := c.commands[cmd]; ok {
		ctr.Add(1)
	} else {
		c.cmdOther.Add(1)
	}
	if ctr, ok := c.codes[code]; ok {
		ctr.Add(1)
	} else {
		c.cdOther.Add(1)
	}
}

// Metrics snapshots the server's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Conns:    s.counters.conns.Load(),
		Commands: make(map[string]uint64),
		Codes:    make(map[int]uint64),
	}
	for cmd, ctr := range s.counters.commands {
		if n := ctr.Load(); n > 0 {
			m.Commands[cmd] = n
		}
	}
	if n := s.counters.cmdOther.Load(); n > 0 {
		m.Commands["other"] = n
	}
	for code, ctr := range s.counters.codes {
		if n := ctr.Load(); n > 0 {
			m.Codes[code] = n
		}
	}
	if n := s.counters.cdOther.Load(); n > 0 {
		m.Codes[-1] = n
	}
	return m
}
