package epp

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a synchronous EPP client for one registrar accreditation. It is
// safe for concurrent use; commands are serialised over the single
// connection, as real EPP sessions are.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	fr   *frameReader
}

// Dial connects to an EPP server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("epp: dial %s: %w", addr, err)
	}
	return NewClientConn(conn), nil
}

// NewClientConn wraps an established connection (a TCP socket, or one end of
// a net.Pipe served by Server.ServeConn for the in-process transport).
func NewClientConn(conn net.Conn) *Client {
	// The frame reader's bufio layer is deliberately not pool-released on
	// Close: Close may race an in-flight roundTrip (that is how a blocked
	// command is interrupted), so the buffer's lifetime is left to the GC.
	return &Client{conn: conn, fr: newFrameReader(conn)}
}

// Close terminates the connection without a logout exchange.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends req and reads the response. Protocol failures (2xxx codes)
// are returned as *ResultError; transport failures as wrapped I/O errors.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.fr.read(&resp); err != nil {
		return nil, err
	}
	if err := resp.Err(); err != nil {
		return &resp, err
	}
	return &resp, nil
}

// Login authenticates the session for the accreditation.
func (c *Client) Login(registrarID int, token string) error {
	_, err := c.roundTrip(&Request{Cmd: CmdLogin, Registrar: registrarID, Token: token})
	return err
}

// Logout ends the session; the server closes the connection afterwards.
func (c *Client) Logout() error {
	_, err := c.roundTrip(&Request{Cmd: CmdLogout})
	return err
}

// Check reports whether name is available for creation.
func (c *Client) Check(name string) (bool, error) {
	resp, err := c.roundTrip(&Request{Cmd: CmdCheck, Name: name})
	if err != nil {
		return false, err
	}
	if resp.Available == nil {
		return false, fmt.Errorf("epp: check %q: response missing availability", name)
	}
	return *resp.Available, nil
}

// Info fetches the current registration of name.
func (c *Client) Info(name string) (*DomainInfo, error) {
	resp, err := c.roundTrip(&Request{Cmd: CmdInfo, Name: name})
	if err != nil {
		return nil, err
	}
	return resp.Domain, nil
}

// Create attempts to register name for years. On contention the registry is
// strictly first come, first served: the losing create returns a
// CodeObjectExists ResultError.
func (c *Client) Create(name string, years int) (*DomainInfo, error) {
	resp, err := c.roundTrip(&Request{Cmd: CmdCreate, Name: name, Years: years})
	if err != nil {
		return nil, err
	}
	return resp.Domain, nil
}

// Renew extends the registration of name by years.
func (c *Client) Renew(name string, years int) error {
	_, err := c.roundTrip(&Request{Cmd: CmdRenew, Name: name, Years: years})
	return err
}

// Update records a registrar update on name (bumping its last-updated
// timestamp).
func (c *Client) Update(name string) error {
	_, err := c.roundTrip(&Request{Cmd: CmdUpdate, Name: name})
	return err
}

// Delete sends the registration into the redemption period.
func (c *Client) Delete(name string) error {
	_, err := c.roundTrip(&Request{Cmd: CmdDelete, Name: name})
	return err
}

// Transfer requests a sponsorship change to this session's accreditation,
// presenting the authorisation code obtained from the current sponsor.
func (c *Client) Transfer(name, authInfo string) error {
	_, err := c.roundTrip(&Request{Cmd: CmdTransfer, Name: name, AuthInfo: authInfo})
	return err
}

// Poll fetches the oldest queued registry message without dequeuing it.
// A nil message means the queue is empty.
func (c *Client) Poll() (*Message, int, error) {
	resp, err := c.roundTrip(&Request{Cmd: CmdPoll, PollOp: PollOpRequest})
	if err != nil {
		return nil, 0, err
	}
	if resp.Code == CodeNoMessages {
		return nil, 0, nil
	}
	return resp.Message, resp.MsgCount, nil
}

// AckMessage dequeues the message with the given ID (must be the oldest).
func (c *Client) AckMessage(id uint64) error {
	_, err := c.roundTrip(&Request{Cmd: CmdPoll, PollOp: PollOpAck, MsgID: id})
	return err
}

// ServerTime returns the registry clock as observed via a check round trip.
func (c *Client) ServerTime() (time.Time, error) {
	resp, err := c.roundTrip(&Request{Cmd: CmdCheck, Name: "timeprobe.com"})
	if err != nil {
		return time.Time{}, err
	}
	return resp.ServerTime, nil
}
