package epp

import (
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// TestReadOnlyRejectsMutations pins the replica stance: every mutating
// command is refused with CodePolicyViolation while reads keep working,
// nothing reaches the store, and lifting the gate (promotion) restores
// writes on the same live sessions.
func TestReadOnlyRejectsMutations(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 12, 0, 0, 0, time.UTC))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 7001, Name: "Catcher A"})
	srv := NewServer(store, clock, ServerConfig{
		Credentials: map[int]string{7001: "tok-a"},
		ReadOnly:    true,
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := store.Create("preexisting.com", 7001, 1); err != nil {
		t.Fatal(err)
	}

	c := dialLogin(t, addr.String(), 7001, "tok-a")

	// Reads work.
	if avail, err := c.Check("unregistered.com"); err != nil || !avail {
		t.Fatalf("check on replica: avail=%v err=%v", avail, err)
	}
	if _, err := c.Info("preexisting.com"); err != nil {
		t.Fatalf("info on replica: %v", err)
	}

	// Every write path is refused with the policy code.
	if _, err := c.Create("newname.com", 1); !IsCode(err, CodePolicyViolation) {
		t.Fatalf("create on replica: %v", err)
	}
	if err := c.Renew("preexisting.com", 1); !IsCode(err, CodePolicyViolation) {
		t.Fatalf("renew on replica: %v", err)
	}
	if err := c.Update("preexisting.com"); !IsCode(err, CodePolicyViolation) {
		t.Fatalf("update on replica: %v", err)
	}
	if err := c.Delete("preexisting.com"); !IsCode(err, CodePolicyViolation) {
		t.Fatalf("delete on replica: %v", err)
	}
	if err := c.Transfer("preexisting.com", "code"); !IsCode(err, CodePolicyViolation) {
		t.Fatalf("transfer on replica: %v", err)
	}
	if gen := store.Generation(); gen != 2 { // registrar + preexisting create only
		t.Fatalf("store mutated through the read-only gate: generation %d", gen)
	}

	// Promotion lifts the gate without bouncing sessions.
	srv.SetReadOnly(false)
	if srv.ReadOnly() {
		t.Fatal("SetReadOnly(false) did not stick")
	}
	if _, err := c.Create("newname.com", 1); err != nil {
		t.Fatalf("create after promotion: %v", err)
	}
	if _, err := store.Get("newname.com"); err != nil {
		t.Fatalf("promoted create not in store: %v", err)
	}
}
