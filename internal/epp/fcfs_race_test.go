package epp

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// TestCreateRaceDuringDropIsFCFS races real EPP sessions against the Drop
// over TCP, on a sharded store, under -race: four registrars hammer create on
// every name scheduled for deletion while the runner purges them. For every
// name exactly one create must win, every loser must see objectExists, and
// the deletion poll notification must land on the queue of the registrar that
// sponsored the name — nobody else's.
func TestCreateRaceDuringDropIsFCFS(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.March, Dom: 8}
	clock := simtime.NewSimClock(day.At(18, 59, 0))
	store := registry.NewStoreWithShards(clock, 8)
	creds := make(map[int]string)
	regIDs := []int{1000, 1001, 1002, 1003}
	for _, r := range regIDs {
		store.AddRegistrar(model.Registrar{IANAID: r, Name: fmt.Sprintf("Racer %d", r)})
		creds[r] = fmt.Sprintf("tok-%d", r)
	}
	poll := NewPollQueue(clock, 0)
	store.SetObserver(poll)

	// Eight contested names, two sponsored by each registrar, all deleting
	// today.
	const nNames = 8
	names := make([]string, nNames)
	sponsorOf := make(map[string]int, nNames)
	for i := range names {
		names[i] = fmt.Sprintf("contested%02d.com", i)
		sponsor := regIDs[i%len(regIDs)]
		sponsorOf[names[i]] = sponsor
		updated := day.AddDays(-35).At(6, 30, i)
		if _, err := store.SeedAt(names[i], sponsor, updated.AddDate(-2, 0, 0), updated,
			updated.AddDate(0, 0, -30), model.StatusPendingDelete, day); err != nil {
			t.Fatal(err)
		}
	}

	srv := NewServer(store, clock, ServerConfig{Credentials: creds, Poll: poll})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	runner := registry.NewDropRunner(store, registry.DropConfig{StartHour: 19, BaseRatePerSec: 10000})
	sched := runner.Schedule(day, rand.New(rand.NewSource(1)))
	if len(sched) != nNames {
		t.Fatalf("scheduled %d deletions, want %d", len(sched), nNames)
	}
	clock.Set(day.At(19, 0, 0))

	var mu sync.Mutex
	winner := make(map[string]int) // name -> winning registrar
	wins := make(map[string]int)   // name -> number of successful creates
	allWon := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(winner) == nNames
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for _, reg := range regIDs {
		wg.Add(1)
		go func(reg int) {
			defer wg.Done()
			client, err := Dial(addr.String())
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer client.Close()
			if err := client.Login(reg, creds[reg]); err != nil {
				t.Errorf("login %d: %v", reg, err)
				return
			}
			<-start
			for !allWon() {
				for _, name := range names {
					_, err := client.Create(name, 1)
					switch {
					case err == nil:
						mu.Lock()
						winner[name] = reg
						wins[name]++
						mu.Unlock()
					case IsCode(err, CodeObjectExists):
						// Lost the race (or the name has not dropped yet);
						// keep sweeping, like a real drop-catch script.
					default:
						t.Errorf("create %s as %d: %v", name, reg, err)
						return
					}
				}
			}
		}(reg)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for _, sc := range sched {
			if _, err := runner.Apply(sc); err != nil {
				t.Errorf("apply %s: %v", sc.Name, err)
			}
		}
	}()
	close(start)
	wg.Wait()

	// FCFS: every contested name was won exactly once, and the store agrees
	// with the recorded winner.
	for _, name := range names {
		if n := wins[name]; n != 1 {
			t.Errorf("%s won %d times, want exactly 1", name, n)
		}
		d, err := store.Get(name)
		if err != nil {
			t.Errorf("get %s after race: %v", name, err)
			continue
		}
		if d.RegistrarID != winner[name] {
			t.Errorf("%s sponsored by %d, but registrar %d won the race", name, d.RegistrarID, winner[name])
		}
	}

	// Every deletion notice landed on the old sponsor's poll queue; no other
	// registrar heard about names it did not sponsor.
	for _, reg := range regIDs {
		var mine []string
		for name, sponsor := range sponsorOf {
			if sponsor == reg {
				mine = append(mine, name)
			}
		}
		if got := poll.Len(reg); got != len(mine) {
			t.Errorf("registrar %d has %d poll messages, want %d", reg, got, len(mine))
		}
		for msg, _, ok := poll.Peek(reg); ok; msg, _, ok = poll.Peek(reg) {
			if !strings.Contains(msg.Text, "deleted") {
				t.Errorf("registrar %d: unexpected poll message %q", reg, msg.Text)
			}
			found := false
			for _, name := range mine {
				if strings.Contains(msg.Text, name) {
					found = true
				}
			}
			if !found {
				t.Errorf("registrar %d: poll message %q is not about its domains %v", reg, msg.Text, mine)
			}
			if err := poll.Ack(reg, msg.ID); err != nil {
				t.Fatalf("ack: %v", err)
			}
		}
	}
}
