package epp

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Cmd: CmdCreate, Name: "example.com", Years: 2}
	if err := WriteFrame(&buf, &in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := strings.Repeat("x", MaxFrame+1)
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversized write frame accepted")
	}
	// Oversized header on read.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	var v any
	if err := ReadFrame(&buf, &v); err == nil {
		t.Fatal("oversized read frame accepted")
	}
}

func TestFrameEOF(t *testing.T) {
	var v Request
	if err := ReadFrame(bytes.NewReader(nil), &v); !errors.Is(err, io.EOF) {
		t.Fatalf("empty read = %v, want EOF", err)
	}
}

func TestFrameTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 10, 'x'})
	var v Request
	if err := ReadFrame(&buf, &v); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestResponseErr(t *testing.T) {
	ok := &Response{Code: CodeOK}
	if ok.Err() != nil || !ok.OK() {
		t.Fatal("success response reported error")
	}
	bad := &Response{Code: CodeObjectExists, Msg: "exists"}
	err := bad.Err()
	if err == nil || !IsCode(err, CodeObjectExists) {
		t.Fatalf("Err = %v", err)
	}
	if IsCode(err, CodeOK) || IsCode(errors.New("x"), CodeObjectExists) {
		t.Fatal("IsCode misidentifies")
	}
}

// newTestServer stands up a registry + EPP server on an ephemeral port.
func newTestServer(t *testing.T, cfg ServerConfig) (*registry.Store, *simtime.SimClock, string) {
	t.Helper()
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 12, 0, 0, 0, time.UTC))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 7001, Name: "Catcher A"})
	store.AddRegistrar(model.Registrar{IANAID: 7002, Name: "Catcher B"})
	if cfg.Credentials == nil {
		cfg.Credentials = map[int]string{7001: "tok-a", 7002: "tok-b"}
	}
	srv := NewServer(store, clock, cfg)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return store, clock, addr.String()
}

func dialLogin(t *testing.T, addr string, id int, tok string) *Client {
	t.Helper()
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Login(id, tok); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestServerLoginRequired(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Check("example.com")
	if !IsCode(err, CodeNotLoggedIn) {
		t.Fatalf("check before login: %v", err)
	}
}

func TestServerBadCredentials(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Login(7001, "wrong"); !IsCode(err, CodeAuthError) {
		t.Fatalf("bad token: %v", err)
	}
	if err := c.Login(9999, "tok-a"); !IsCode(err, CodeAuthError) {
		t.Fatalf("unknown registrar: %v", err)
	}
}

func TestServerCreateInfoDelete(t *testing.T) {
	store, clock, addr := newTestServer(t, ServerConfig{})
	c := dialLogin(t, addr, 7001, "tok-a")

	avail, err := c.Check("fresh.com")
	if err != nil || !avail {
		t.Fatalf("check: %v %v", avail, err)
	}
	d, err := c.Create("fresh.com", 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "fresh.com" || d.Registrar != 7001 || d.Status != "active" {
		t.Fatalf("created: %+v", d)
	}
	if !d.Created.Equal(simtime.Trunc(clock.Now())) {
		t.Fatalf("created time: %v", d.Created)
	}

	info, err := c.Info("fresh.com")
	if err != nil || info.ID != d.ID {
		t.Fatalf("info: %+v %v", info, err)
	}

	if err := c.Delete("fresh.com"); err != nil {
		t.Fatal(err)
	}
	got, _ := store.Get("fresh.com")
	if got.Status != model.StatusRedemption {
		t.Fatalf("status after delete = %v", got.Status)
	}
	// Deleting again is prohibited by status.
	if err := c.Delete("fresh.com"); !IsCode(err, CodeStatusProhibits) {
		t.Fatalf("second delete: %v", err)
	}
}

func TestServerFCFSContention(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	a := dialLogin(t, addr, 7001, "tok-a")
	b := dialLogin(t, addr, 7002, "tok-b")

	var wg sync.WaitGroup
	results := make([]error, 2)
	wg.Add(2)
	go func() { defer wg.Done(); _, results[0] = a.Create("contested.com", 1) }()
	go func() { defer wg.Done(); _, results[1] = b.Create("contested.com", 1) }()
	wg.Wait()

	wins, losses := 0, 0
	for _, err := range results {
		switch {
		case err == nil:
			wins++
		case IsCode(err, CodeObjectExists):
			losses++
		default:
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if wins != 1 || losses != 1 {
		t.Fatalf("wins=%d losses=%d, want exactly one of each", wins, losses)
	}
}

func TestServerAuthorization(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	a := dialLogin(t, addr, 7001, "tok-a")
	b := dialLogin(t, addr, 7002, "tok-b")
	if _, err := a.Create("owned.com", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("owned.com"); !IsCode(err, CodeAuthorization) {
		t.Fatalf("cross-registrar delete: %v", err)
	}
	if err := b.Update("owned.com"); !IsCode(err, CodeAuthorization) {
		t.Fatalf("cross-registrar update: %v", err)
	}
	if err := b.Renew("owned.com", 1); !IsCode(err, CodeAuthorization) {
		t.Fatalf("cross-registrar renew: %v", err)
	}
}

func TestServerRateLimit(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{CreateBurst: 3, CreateRate: 0.0001})
	c := dialLogin(t, addr, 7001, "tok-a")
	okCount, limited := 0, 0
	for i := 0; i < 6; i++ {
		_, err := c.Create("rl"+string(rune('a'+i))+".com", 1)
		switch {
		case err == nil:
			okCount++
		case IsCode(err, CodeRateLimited):
			limited++
		default:
			t.Fatalf("unexpected: %v", err)
		}
	}
	if okCount != 3 || limited != 3 {
		t.Fatalf("ok=%d limited=%d, want 3/3", okCount, limited)
	}
	// A different accreditation has its own budget: this is why drop-catch
	// services hold hundreds of them.
	b := dialLogin(t, addr, 7002, "tok-b")
	if _, err := b.Create("other-budget.com", 1); err != nil {
		t.Fatalf("independent budget consumed: %v", err)
	}
}

// TestServerInvalidCreateDoesNotBurnTokens: a create that fails validation
// (bad name or out-of-range years) must be rejected before the rate limiter
// is charged. Previously the bucket was debited first, so a competitor could
// be starved of its budget by its own malformed retries — or a buggy client
// could burn its entire Drop-second allowance on garbage.
func TestServerInvalidCreateDoesNotBurnTokens(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{CreateBurst: 2, CreateRate: 0.0001})
	c := dialLogin(t, addr, 7001, "tok-a")
	invalid := []struct {
		name  string
		years int
	}{
		{"no-tld", 1},
		{"UPPER.com", 1},
		{"-lead.com", 1},
		{"", 1},
		{"fine.com", 11},
		{"fine.com", -2},
	}
	for _, in := range invalid {
		if _, err := c.Create(in.name, in.years); !IsCode(err, CodeParamRange) {
			t.Fatalf("create %q/%d: got %v, want CodeParamRange", in.name, in.years, err)
		}
	}
	// The full burst of 2 must still be available after 6 invalid attempts.
	if _, err := c.Create("valid-a.com", 1); err != nil {
		t.Fatalf("first valid create after invalid spam: %v", err)
	}
	if _, err := c.Create("valid-b.com", 1); err != nil {
		t.Fatalf("second valid create after invalid spam: %v", err)
	}
	if _, err := c.Create("valid-c.com", 1); !IsCode(err, CodeRateLimited) {
		t.Fatalf("third valid create: got %v, want CodeRateLimited", err)
	}
}

func TestServerRateLimitRefill(t *testing.T) {
	_, clock, addr := newTestServer(t, ServerConfig{CreateBurst: 1, CreateRate: 1})
	c := dialLogin(t, addr, 7001, "tok-a")
	if _, err := c.Create("first.com", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("second.com", 1); !IsCode(err, CodeRateLimited) {
		t.Fatalf("expected rate limit, got %v", err)
	}
	clock.Advance(2 * time.Second)
	if _, err := c.Create("second.com", 1); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestServerUnknownCommand(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.roundTrip(&Request{Cmd: "bogus"})
	if !IsCode(err, CodeUnknownCommand) {
		t.Fatalf("bogus command: %+v %v", resp, err)
	}
}

func TestServerLogout(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	c := dialLogin(t, addr, 7001, "tok-a")
	if err := c.Logout(); err != nil {
		t.Fatalf("logout: %v", err)
	}
}

func TestServerTimeAdvances(t *testing.T) {
	_, clock, addr := newTestServer(t, ServerConfig{})
	c := dialLogin(t, addr, 7001, "tok-a")
	t1, err := c.ServerTime()
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Minute)
	t2, err := c.ServerTime()
	if err != nil {
		t.Fatal(err)
	}
	if got := t2.Sub(t1); got != time.Minute {
		t.Fatalf("server time advanced %v, want 1m", got)
	}
}

func TestTokenBucket(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2018, 1, 1, 0, 0, 0, 0, time.UTC))
	b := NewTokenBucket(clock, 2, 1)
	if !b.Allow() || !b.Allow() {
		t.Fatal("initial burst not allowed")
	}
	if b.Allow() {
		t.Fatal("over-burst allowed")
	}
	clock.Advance(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("refilled token not allowed")
	}
	if b.Allow() {
		t.Fatal("partial token allowed")
	}
	// Capacity caps accumulation.
	clock.Advance(time.Hour)
	if !b.AllowN(2) {
		t.Fatal("capacity tokens not allowed")
	}
	if b.Allow() {
		t.Fatal("tokens beyond capacity allowed")
	}
}

func TestTransferOverEPP(t *testing.T) {
	_, _, addr := newTestServer(t, ServerConfig{})
	owner := dialLogin(t, addr, 7001, "tok-a")
	gainer := dialLogin(t, addr, 7002, "tok-b")

	if _, err := owner.Create("movable.com", 1); err != nil {
		t.Fatal(err)
	}
	// The sponsor sees the auth code via info; others do not.
	info, err := owner.Info("movable.com")
	if err != nil || info.AuthInfo == "" {
		t.Fatalf("sponsor info: %+v %v", info, err)
	}
	foreign, err := gainer.Info("movable.com")
	if err != nil || foreign.AuthInfo != "" {
		t.Fatalf("auth code leaked to non-sponsor: %+v %v", foreign, err)
	}

	if err := gainer.Transfer("movable.com", "bogus"); !IsCode(err, CodeBadAuthInfo) {
		t.Fatalf("bogus code: %v", err)
	}
	if err := gainer.Transfer("movable.com", info.AuthInfo); err != nil {
		t.Fatal(err)
	}
	moved, err := gainer.Info("movable.com")
	if err != nil || moved.Registrar != 7002 {
		t.Fatalf("after transfer: %+v %v", moved, err)
	}
	if moved.AuthInfo == "" || moved.AuthInfo == info.AuthInfo {
		t.Fatalf("auth code not rotated: %q", moved.AuthInfo)
	}
}
