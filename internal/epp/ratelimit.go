package epp

import (
	"sync"
	"time"

	"dropzero/internal/simtime"
)

// TokenBucket is a classic token-bucket rate limiter driven by a Clock, so
// it works identically under virtual and real time. The zero value is not
// usable; construct with NewTokenBucket.
type TokenBucket struct {
	mu       sync.Mutex
	clock    simtime.Clock
	capacity float64
	rate     float64 // tokens per second
	tokens   float64
	last     time.Time
}

// NewTokenBucket returns a bucket holding at most capacity tokens, refilled
// at rate tokens/second, initially full.
func NewTokenBucket(clock simtime.Clock, capacity, rate float64) *TokenBucket {
	return &TokenBucket{
		clock:    clock,
		capacity: capacity,
		rate:     rate,
		tokens:   capacity,
		last:     clock.Now(),
	}
}

// Allow consumes one token if available and reports whether it could.
func (b *TokenBucket) Allow() bool { return b.AllowN(1) }

// AllowN consumes n tokens if available and reports whether it could.
func (b *TokenBucket) AllowN(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.clock.Now()
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.capacity {
			b.tokens = b.capacity
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Limiter tracks one TokenBucket per registrar accreditation. Each
// accreditation gets an independent create budget, which is exactly why
// drop-catch services acquire accreditations by the hundred.
type Limiter struct {
	clock    simtime.Clock
	capacity float64
	rate     float64

	mu      sync.Mutex
	buckets map[int]*TokenBucket
}

// NewLimiter returns a Limiter giving every accreditation a bucket of the
// given capacity and refill rate.
func NewLimiter(clock simtime.Clock, capacity, rate float64) *Limiter {
	return &Limiter{
		clock:    clock,
		capacity: capacity,
		rate:     rate,
		buckets:  make(map[int]*TokenBucket),
	}
}

// Allow consumes one create token for the accreditation.
func (l *Limiter) Allow(registrarID int) bool {
	l.mu.Lock()
	b, ok := l.buckets[registrarID]
	if !ok {
		b = NewTokenBucket(l.clock, l.capacity, l.rate)
		l.buckets[registrarID] = b
	}
	l.mu.Unlock()
	return b.Allow()
}
