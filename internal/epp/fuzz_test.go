package epp

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"
	"time"
	"unicode/utf8"
)

// FuzzReadFrame hardens the frame decoder against hostile bytes: no panics,
// no unbounded allocations beyond the frame cap.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &Request{Cmd: CmdCheck, Name: "seed.com"})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	// Truncated header and truncated body.
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 9, '{', '}'})
	// Header exactly at and one past the frame cap.
	capped := make([]byte, 4)
	binary.BigEndian.PutUint32(capped, MaxFrame)
	f.Add(capped)
	over := make([]byte, 4)
	binary.BigEndian.PutUint32(over, MaxFrame+1)
	f.Add(over)
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req)
		var resp Response
		_ = ReadFrame(bytes.NewReader(data), &resp)
		// The connection-loop reader must agree with the one-shot reader on
		// whether a frame is acceptable.
		fr := newFrameReader(bytes.NewReader(data))
		var req2 Request
		err1 := ReadFrame(bytes.NewReader(data), &req)
		err2 := fr.read(&req2)
		fr.release()
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("ReadFrame err=%v, frameReader err=%v", err1, err2)
		}
		if err1 == nil && req != req2 {
			t.Fatalf("ReadFrame %+v, frameReader %+v", req, req2)
		}
	})
}

// FuzzFrameRoundTrip drives arbitrary Request values through the append
// encoder and the specialised decoder, pinning three properties: the encoder
// is byte-identical to encoding/json, encode→decode is the identity, and the
// decoder agrees with encoding/json on the same body.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add("create", 1007, "tok", "contested00.com", 3, "req", uint64(18), "AX-3k")
	f.Add("", 0, "", "", 0, "", uint64(0), "")
	f.Add("poll", -1, "t\x00k", "héllo <&>.com", -10, "ack", uint64(1)<<63, "\xff\xfe")
	f.Add("login", 42, "line sep", "�.net", 9, "zz", ^uint64(0), "\\\"")
	f.Fuzz(func(t *testing.T, cmd string, registrar int, token, name string,
		years int, pollOp string, msgID uint64, authInfo string) {
		req := Request{Cmd: cmd, Registrar: registrar, Token: token, Name: name,
			Years: years, PollOp: pollOp, MsgID: msgID, AuthInfo: authInfo}

		want, err := json.Marshal(&req)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got := appendRequest(nil, &req)
		if !bytes.Equal(got, want) {
			t.Fatalf("encoder drift:\n got %s\nwant %s", got, want)
		}

		// encode→decode round trip. Invalid UTF-8 is lossy by design (each
		// bad byte becomes �, exactly as encoding/json renders it), so the
		// round-trip target is the value as json itself decodes it; for
		// valid-UTF-8 input that equals req exactly.
		var back, viaJSON Request
		if err := decodeFrame(got, &back, nil); err != nil {
			t.Fatalf("decodeFrame rejected encoder output %s: %v", got, err)
		}
		if err := json.Unmarshal(got, &viaJSON); err != nil {
			t.Fatalf("json.Unmarshal: %v", err)
		}
		if back != viaJSON {
			t.Fatalf("decoder disagrees with encoding/json:\n got %+v\nwant %+v", back, viaJSON)
		}
		if utf8.ValidString(cmd) && utf8.ValidString(token) && utf8.ValidString(name) &&
			utf8.ValidString(pollOp) && utf8.ValidString(authInfo) && back != req {
			t.Fatalf("round trip drift:\n got %+v\nwant %+v", back, req)
		}
	})
}

// FuzzResponseRoundTrip does the same for Response frames, covering the
// pointer-valued fields (availability, domain, poll message) and timestamps.
func FuzzResponseRoundTrip(f *testing.F) {
	f.Add(1000, "ok", true, true, "won.com", int64(1520535600), "active", uint64(3), "deleted", 7)
	f.Add(2302, "object exists", false, false, "", int64(0), "", uint64(0), "", 0)
	f.Add(2400, "msg  <&>", true, false, "\xffbad.com", int64(-62135596800), "pendingDelete", ^uint64(0), "x\x00y", -4)
	f.Fuzz(func(t *testing.T, code int, msg string, hasAvail, avail bool,
		domName string, unix int64, status string, msgID uint64, msgText string, msgCount int) {
		resp := Response{Code: code, Msg: msg, MsgCount: msgCount,
			ServerTime: time.Unix(unix%4e10, 0).UTC()}
		if hasAvail {
			resp.Available = &avail
		}
		if domName != "" {
			ts := time.Unix(unix%4e10, int64(code)).UTC()
			resp.Domain = &DomainInfo{ID: msgID, Name: domName, Registrar: code,
				Created: ts, Updated: ts, Expiry: ts, Status: status, AuthInfo: msgText}
		}
		if msgID != 0 {
			resp.Message = &Message{ID: msgID, Time: time.Unix(unix%4e10, 0).UTC(), Text: msgText}
		}

		want, jerr := json.Marshal(&resp)
		got, ok := appendResponse(nil, &resp)
		if (jerr == nil) != ok {
			t.Fatalf("encoder ok=%v, json.Marshal err=%v", ok, jerr)
		}
		if jerr != nil {
			return // out-of-range time; both sides reject, nothing to compare
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encoder drift:\n got %s\nwant %s", got, want)
		}
		var back, viaJSON Response
		if err := decodeFrame(got, &back, nil); err != nil {
			t.Fatalf("decodeFrame rejected encoder output %s: %v", got, err)
		}
		if err := json.Unmarshal(got, &viaJSON); err != nil {
			t.Fatalf("json.Unmarshal: %v", err)
		}
		assertResponseEqual(t, &back, &viaJSON)
	})
}

func assertResponseEqual(t *testing.T, got, want *Response) {
	t.Helper()
	if got.Code != want.Code || got.Msg != want.Msg || got.MsgCount != want.MsgCount ||
		!got.ServerTime.Equal(want.ServerTime) {
		t.Fatalf("scalar drift:\n got %+v\nwant %+v", got, want)
	}
	if (got.Available == nil) != (want.Available == nil) ||
		(got.Available != nil && *got.Available != *want.Available) {
		t.Fatalf("available drift: got %v want %v", got.Available, want.Available)
	}
	if (got.Domain == nil) != (want.Domain == nil) {
		t.Fatalf("domain drift: got %+v want %+v", got.Domain, want.Domain)
	}
	if got.Domain != nil && *got.Domain != *want.Domain {
		t.Fatalf("domain drift:\n got %+v\nwant %+v", *got.Domain, *want.Domain)
	}
	if (got.Message == nil) != (want.Message == nil) {
		t.Fatalf("message drift: got %+v want %+v", got.Message, want.Message)
	}
	if got.Message != nil && *got.Message != *want.Message {
		t.Fatalf("message drift:\n got %+v\nwant %+v", *got.Message, *want.Message)
	}
}
