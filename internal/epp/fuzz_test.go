package epp

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the frame decoder against hostile bytes: no panics,
// no unbounded allocations beyond the frame cap.
func FuzzReadFrame(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteFrame(&buf, &Request{Cmd: CmdCheck, Name: "seed.com"})
	f.Add(buf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		_ = ReadFrame(bytes.NewReader(data), &req)
	})
}
