package epp

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// ServerConfig parameterises an EPP server.
type ServerConfig struct {
	// Credentials maps registrar IANA IDs to their login tokens. Logins for
	// unknown IDs or with wrong tokens are rejected with CodeAuthError.
	Credentials map[int]string
	// CreateBurst and CreateRate configure the per-accreditation token
	// bucket applied to create commands. Zero values disable rate limiting.
	CreateBurst float64
	CreateRate  float64
	// Logf, when set, receives one line per connection error. Defaults to
	// log.Printf when nil and Verbose is true; silent otherwise.
	Logf    func(format string, args ...any)
	Verbose bool
	// Poll, when set, serves the offline-notification channel and should
	// also be installed as the registry store's Observer so lifecycle and
	// Drop events reach sponsors.
	Poll *PollQueue
	// ReadOnly starts the server with mutating commands (create, renew,
	// update, delete, transfer) rejected with CodePolicyViolation. This is
	// the replica stance: reads are served locally, writes belong to the
	// primary. Flipped at runtime via SetReadOnly — promotion lifts it.
	ReadOnly bool
}

// Server serves the registry over the EPP-like protocol.
type Server struct {
	store    *registry.Store
	clock    simtime.Clock
	cfg      ServerConfig
	limiter  *Limiter
	counters *serverCounters
	readOnly atomic.Bool

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns a Server over store.
func NewServer(store *registry.Store, clock simtime.Clock, cfg ServerConfig) *Server {
	s := &Server{
		store: store, clock: clock, cfg: cfg,
		counters: newServerCounters(),
		conns:    make(map[net.Conn]struct{}),
	}
	if cfg.CreateBurst > 0 && cfg.CreateRate > 0 {
		s.limiter = NewLimiter(clock, cfg.CreateBurst, cfg.CreateRate)
	}
	s.readOnly.Store(cfg.ReadOnly)
	return s
}

// SetReadOnly flips the mutating-command gate at runtime: a replica serves
// with it set, and promotion to primary clears it. Commands already past
// the gate are unaffected — on a replica there are none, because the gate
// was up before the listener.
func (s *Server) SetReadOnly(v bool) { s.readOnly.Store(v) }

// ReadOnly reports whether mutating commands are currently rejected.
func (s *Server) ReadOnly() bool { return s.readOnly.Load() }

func (s *Server) logf(format string, args ...any) {
	switch {
	case s.cfg.Logf != nil:
		s.cfg.Logf(format, args...)
	case s.cfg.Verbose:
		log.Printf(format, args...)
	}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral test port) and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("epp: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener and all active connections, waiting for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// ServeConn serves one already-established connection until it closes or the
// server shuts down. It is the building block of the in-process transport:
// storm harnesses and benchmarks pass one end of a net.Pipe so the full
// framing and dispatch path runs at memory speed, with the TCP path byte-for
// -byte identical.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	defer s.wg.Done()
	s.serveConn(conn)
}

// ConnectInProc returns a client whose connection is a net.Pipe served by
// this server — the in-process EPP transport.
func (s *Server) ConnectInProc() *Client {
	cli, srv := net.Pipe()
	go s.ServeConn(srv)
	return NewClientConn(cli)
}

// session is per-connection login state.
type session struct {
	registrarID int
	loggedIn    bool
}

func (s *Server) serveConn(conn net.Conn) {
	s.counters.conns.Add(1)
	fr := newFrameReader(conn)
	defer func() {
		fr.release()
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// One Request and one Response are reused for the life of the
	// connection; frames are decoded through the connection's pooled reader
	// and encoded with the append encoders, so a steady-state command costs
	// no per-frame buffer allocations on this side of the wire.
	var sess session
	var req Request
	var resp Response
	for {
		req = Request{}
		if err := fr.read(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("epp: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		s.handle(&sess, &req, &resp)
		if err := WriteFrame(conn, &resp); err != nil {
			s.logf("epp: %s: %v", conn.RemoteAddr(), err)
			return
		}
		if req.Cmd == CmdLogout {
			return
		}
	}
}

// Handle executes one command against the registry. It is exported so the
// in-process transport used by large simulations exercises exactly the same
// dispatch logic as the TCP path.
func (s *Server) Handle(sess *session, req *Request) *Response {
	resp := &Response{}
	s.handle(sess, req, resp)
	return resp
}

// handle dispatches into resp, which it fully overwrites.
func (s *Server) handle(sess *session, req *Request, resp *Response) {
	*resp = Response{ServerTime: simtime.Trunc(s.clock.Now())}
	switch req.Cmd {
	case CmdLogin:
		s.handleLogin(sess, req, resp)
	case CmdLogout:
		sess.loggedIn = false
		resp.Code, resp.Msg = CodeLoggedOut, msgLoggedOut
	case CmdCheck:
		s.requireLogin(sess, resp, func() { s.handleCheck(req, resp) })
	case CmdInfo:
		s.requireLogin(sess, resp, func() { s.handleInfo(sess, req, resp) })
	case CmdCreate:
		s.requireWritable(sess, resp, func() { s.handleCreate(sess, req, resp) })
	case CmdRenew:
		s.requireWritable(sess, resp, func() { s.handleRenew(sess, req, resp) })
	case CmdUpdate:
		s.requireWritable(sess, resp, func() { s.handleUpdate(sess, req, resp) })
	case CmdDelete:
		s.requireWritable(sess, resp, func() { s.handleDelete(sess, req, resp) })
	case CmdPoll:
		s.requireLogin(sess, resp, func() { s.handlePoll(sess, req, resp) })
	case CmdTransfer:
		s.requireWritable(sess, resp, func() { s.handleTransfer(sess, req, resp) })
	default:
		resp.Code, resp.Msg = CodeUnknownCommand, fmt.Sprintf("unknown command %q", req.Cmd)
	}
	s.counters.record(req.Cmd, resp.Code)
}

// Interned result messages: the hot-path outcomes answer with static strings
// (RFC 5730-style default result text) instead of formatting a fresh message
// per frame. Parameter errors keep their diagnostic err.Error() text — they
// are off the storm path and the detail matters there.
const (
	msgOK              = "command completed successfully"
	msgLoggedOut       = "command completed successfully; ending session"
	msgNoMessages      = "command completed successfully; no messages"
	msgAckToDequeue    = "command completed successfully; ack to dequeue"
	msgNotLoggedIn     = "command use error; login first"
	msgAuthError       = "authentication error"
	msgRateLimited     = "session limit exceeded; try again later"
	msgObjectExists    = "object exists"
	msgObjectNotFound  = "object does not exist"
	msgAuthorization   = "authorization error"
	msgBadAuthInfo     = "invalid authorization information"
	msgStatusProhibits = "object status prohibits operation"
	msgReadOnly        = "data management policy violation; server is a read-only replica, direct writes to the primary"
)

// resultMsg maps a store failure to its interned message; codes without a
// canonical text fall back to the error's own description.
func resultMsg(code int, err error) string {
	switch code {
	case CodeObjectExists:
		return msgObjectExists
	case CodeObjectNotFound:
		return msgObjectNotFound
	case CodeAuthorization:
		return msgAuthorization
	case CodeBadAuthInfo:
		return msgBadAuthInfo
	case CodeStatusProhibits:
		return msgStatusProhibits
	}
	return err.Error()
}

func (s *Server) requireLogin(sess *session, resp *Response, fn func()) {
	if !sess.loggedIn {
		resp.Code, resp.Msg = CodeNotLoggedIn, msgNotLoggedIn
		return
	}
	fn()
}

// requireWritable gates mutating commands: login first, then the read-only
// check, so a replica still authenticates sessions (check/info/poll need
// them) but refuses writes with an unambiguous, machine-actionable code.
func (s *Server) requireWritable(sess *session, resp *Response, fn func()) {
	s.requireLogin(sess, resp, func() {
		if s.readOnly.Load() {
			resp.Code, resp.Msg = CodePolicyViolation, msgReadOnly
			return
		}
		fn()
	})
}

func (s *Server) handleLogin(sess *session, req *Request, resp *Response) {
	token, ok := s.cfg.Credentials[req.Registrar]
	if !ok || token != req.Token {
		resp.Code, resp.Msg = CodeAuthError, msgAuthError
		return
	}
	if _, ok := s.store.Registrar(req.Registrar); !ok {
		resp.Code, resp.Msg = CodeAuthError, "unknown accreditation"
		return
	}
	sess.registrarID = req.Registrar
	sess.loggedIn = true
	resp.Code, resp.Msg = CodeOK, msgOK
}

func (s *Server) handleCheck(req *Request, resp *Response) {
	avail, err := s.store.Available(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeParamRange, err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
	resp.Available = &avail
}

func (s *Server) handleInfo(sess *session, req *Request, resp *Response) {
	d, err := s.store.Get(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeObjectNotFound, msgObjectNotFound
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
	resp.Domain = toInfo(d)
	if d.RegistrarID == sess.registrarID {
		if auth, err := s.store.AuthInfo(req.Name, sess.registrarID); err == nil {
			resp.Domain.AuthInfo = auth
		}
	}
}

func (s *Server) handleTransfer(sess *session, req *Request, resp *Response) {
	if err := s.store.Transfer(req.Name, sess.registrarID, req.AuthInfo); err != nil {
		code := storeCode(err)
		resp.Code, resp.Msg = code, resultMsg(code, err)
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
}

func (s *Server) handleCreate(sess *session, req *Request, resp *Response) {
	years := req.Years
	if years == 0 {
		years = 1
	}
	// Validate the command before charging the per-accreditation token
	// bucket: the bucket is the scarce resource drop-catchers race over, and
	// charging first would let anyone who knows a competitor's login burn
	// that competitor's create budget with free invalid-name spam.
	if err := s.store.CheckName(req.Name); err != nil {
		resp.Code, resp.Msg = CodeParamRange, err.Error()
		return
	}
	if years < 1 || years > 10 {
		resp.Code, resp.Msg = CodeParamRange, fmt.Sprintf("invalid term %d years", years)
		return
	}
	if s.limiter != nil && !s.limiter.Allow(sess.registrarID) {
		resp.Code, resp.Msg = CodeRateLimited, msgRateLimited
		return
	}
	d, err := s.store.Create(req.Name, sess.registrarID, years)
	if err != nil {
		code := storeCode(err)
		resp.Code, resp.Msg = code, resultMsg(code, err)
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
	resp.Domain = toInfo(d)
}

func (s *Server) handleRenew(sess *session, req *Request, resp *Response) {
	years := req.Years
	if years == 0 {
		years = 1
	}
	if err := s.store.Renew(req.Name, sess.registrarID, years); err != nil {
		code := storeCode(err)
		resp.Code, resp.Msg = code, resultMsg(code, err)
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
}

func (s *Server) handleUpdate(sess *session, req *Request, resp *Response) {
	if err := s.store.Touch(req.Name, sess.registrarID); err != nil {
		code := storeCode(err)
		resp.Code, resp.Msg = code, resultMsg(code, err)
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
}

func (s *Server) handleDelete(sess *session, req *Request, resp *Response) {
	d, err := s.store.Get(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeObjectNotFound, msgObjectNotFound
		return
	}
	if d.RegistrarID != sess.registrarID {
		resp.Code, resp.Msg = CodeAuthorization, msgAuthorization
		return
	}
	if d.Status != model.StatusActive && d.Status != model.StatusAutoRenew {
		resp.Code, resp.Msg = CodeStatusProhibits, msgStatusProhibits
		return
	}
	// A registrar delete sends the domain into the redemption period; its
	// Updated timestamp — set now — becomes the future deletion-order key.
	if err := s.store.MarkRedemption(req.Name, s.clock.Now()); err != nil {
		code := storeCode(err)
		resp.Code, resp.Msg = code, resultMsg(code, err)
		return
	}
	resp.Code, resp.Msg = CodeOK, msgOK
}

func (s *Server) handlePoll(sess *session, req *Request, resp *Response) {
	if s.cfg.Poll == nil {
		resp.Code, resp.Msg = CodeUnknownCommand, "poll channel not offered"
		return
	}
	switch req.PollOp {
	case PollOpRequest, "":
		msg, count, ok := s.cfg.Poll.Peek(sess.registrarID)
		if !ok {
			resp.Code, resp.Msg = CodeNoMessages, msgNoMessages
			return
		}
		resp.Code, resp.Msg = CodeAckToDequeue, msgAckToDequeue
		resp.Message = &msg
		resp.MsgCount = count
	case PollOpAck:
		if err := s.cfg.Poll.Ack(sess.registrarID, req.MsgID); err != nil {
			resp.Code, resp.Msg = CodeParamRange, err.Error()
			return
		}
		resp.Code, resp.Msg = CodeOK, msgOK
		resp.MsgCount = s.cfg.Poll.Len(sess.registrarID)
	default:
		resp.Code, resp.Msg = CodeParamRange, fmt.Sprintf("unknown poll op %q", req.PollOp)
	}
}

func storeCode(err error) int {
	switch {
	case errors.Is(err, registry.ErrExists):
		return CodeObjectExists
	case errors.Is(err, registry.ErrNotFound):
		return CodeObjectNotFound
	case errors.Is(err, registry.ErrWrongRegistrar):
		return CodeAuthorization
	case errors.Is(err, registry.ErrBadAuthInfo):
		return CodeBadAuthInfo
	case errors.Is(err, registry.ErrStatusProhibits):
		return CodeStatusProhibits
	case errors.Is(err, registry.ErrBadName), errors.Is(err, registry.ErrUnknownTLD):
		return CodeParamRange
	case errors.Is(err, registry.ErrUnknownRegistrar):
		return CodeAuthError
	default:
		return CodeCommandFailed
	}
}

func toInfo(d *model.Domain) *DomainInfo {
	return &DomainInfo{
		ID:        d.ID,
		Name:      d.Name,
		Registrar: d.RegistrarID,
		Created:   d.Created,
		Updated:   d.Updated,
		Expiry:    d.Expiry,
		Status:    d.Status.String(),
	}
}
