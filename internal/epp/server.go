package epp

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// ServerConfig parameterises an EPP server.
type ServerConfig struct {
	// Credentials maps registrar IANA IDs to their login tokens. Logins for
	// unknown IDs or with wrong tokens are rejected with CodeAuthError.
	Credentials map[int]string
	// CreateBurst and CreateRate configure the per-accreditation token
	// bucket applied to create commands. Zero values disable rate limiting.
	CreateBurst float64
	CreateRate  float64
	// Logf, when set, receives one line per connection error. Defaults to
	// log.Printf when nil and Verbose is true; silent otherwise.
	Logf    func(format string, args ...any)
	Verbose bool
	// Poll, when set, serves the offline-notification channel and should
	// also be installed as the registry store's Observer so lifecycle and
	// Drop events reach sponsors.
	Poll *PollQueue
}

// Server serves the registry over the EPP-like protocol.
type Server struct {
	store   *registry.Store
	clock   simtime.Clock
	cfg     ServerConfig
	limiter *Limiter

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer returns a Server over store.
func NewServer(store *registry.Store, clock simtime.Clock, cfg ServerConfig) *Server {
	s := &Server{store: store, clock: clock, cfg: cfg, conns: make(map[net.Conn]struct{})}
	if cfg.CreateBurst > 0 && cfg.CreateRate > 0 {
		s.limiter = NewLimiter(clock, cfg.CreateBurst, cfg.CreateRate)
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	switch {
	case s.cfg.Logf != nil:
		s.cfg.Logf(format, args...)
	case s.cfg.Verbose:
		log.Printf(format, args...)
	}
}

// Listen starts accepting connections on addr ("127.0.0.1:0" for an
// ephemeral test port) and returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("epp: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops the listener and all active connections, waiting for handler
// goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.listener
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// session is per-connection login state.
type session struct {
	registrarID int
	loggedIn    bool
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var sess session
	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("epp: %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		resp := s.Handle(&sess, &req)
		if err := WriteFrame(conn, resp); err != nil {
			s.logf("epp: %s: %v", conn.RemoteAddr(), err)
			return
		}
		if req.Cmd == CmdLogout {
			return
		}
	}
}

// Handle executes one command against the registry. It is exported so the
// in-process transport used by large simulations exercises exactly the same
// dispatch logic as the TCP path.
func (s *Server) Handle(sess *session, req *Request) *Response {
	resp := &Response{ServerTime: simtime.Trunc(s.clock.Now())}
	switch req.Cmd {
	case CmdLogin:
		s.handleLogin(sess, req, resp)
	case CmdLogout:
		sess.loggedIn = false
		resp.Code, resp.Msg = CodeLoggedOut, "command completed successfully; ending session"
	case CmdCheck:
		s.requireLogin(sess, resp, func() { s.handleCheck(req, resp) })
	case CmdInfo:
		s.requireLogin(sess, resp, func() { s.handleInfo(sess, req, resp) })
	case CmdCreate:
		s.requireLogin(sess, resp, func() { s.handleCreate(sess, req, resp) })
	case CmdRenew:
		s.requireLogin(sess, resp, func() { s.handleRenew(sess, req, resp) })
	case CmdUpdate:
		s.requireLogin(sess, resp, func() { s.handleUpdate(sess, req, resp) })
	case CmdDelete:
		s.requireLogin(sess, resp, func() { s.handleDelete(sess, req, resp) })
	case CmdPoll:
		s.requireLogin(sess, resp, func() { s.handlePoll(sess, req, resp) })
	case CmdTransfer:
		s.requireLogin(sess, resp, func() { s.handleTransfer(sess, req, resp) })
	default:
		resp.Code, resp.Msg = CodeUnknownCommand, fmt.Sprintf("unknown command %q", req.Cmd)
	}
	return resp
}

func (s *Server) requireLogin(sess *session, resp *Response, fn func()) {
	if !sess.loggedIn {
		resp.Code, resp.Msg = CodeNotLoggedIn, "command use error; login first"
		return
	}
	fn()
}

func (s *Server) handleLogin(sess *session, req *Request, resp *Response) {
	token, ok := s.cfg.Credentials[req.Registrar]
	if !ok || token != req.Token {
		resp.Code, resp.Msg = CodeAuthError, "authentication error"
		return
	}
	if _, ok := s.store.Registrar(req.Registrar); !ok {
		resp.Code, resp.Msg = CodeAuthError, "unknown accreditation"
		return
	}
	sess.registrarID = req.Registrar
	sess.loggedIn = true
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
}

func (s *Server) handleCheck(req *Request, resp *Response) {
	avail, err := s.store.Available(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeParamRange, err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
	resp.Available = &avail
}

func (s *Server) handleInfo(sess *session, req *Request, resp *Response) {
	d, err := s.store.Get(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeObjectNotFound, "object does not exist"
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
	resp.Domain = toInfo(d)
	if d.RegistrarID == sess.registrarID {
		if auth, err := s.store.AuthInfo(req.Name, sess.registrarID); err == nil {
			resp.Domain.AuthInfo = auth
		}
	}
}

func (s *Server) handleTransfer(sess *session, req *Request, resp *Response) {
	if err := s.store.Transfer(req.Name, sess.registrarID, req.AuthInfo); err != nil {
		resp.Code, resp.Msg = storeCode(err), err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
}

func (s *Server) handleCreate(sess *session, req *Request, resp *Response) {
	if s.limiter != nil && !s.limiter.Allow(sess.registrarID) {
		resp.Code, resp.Msg = CodeRateLimited, "session limit exceeded; try again later"
		return
	}
	years := req.Years
	if years == 0 {
		years = 1
	}
	d, err := s.store.Create(req.Name, sess.registrarID, years)
	if err != nil {
		resp.Code, resp.Msg = storeCode(err), err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
	resp.Domain = toInfo(d)
}

func (s *Server) handleRenew(sess *session, req *Request, resp *Response) {
	years := req.Years
	if years == 0 {
		years = 1
	}
	if err := s.store.Renew(req.Name, sess.registrarID, years); err != nil {
		resp.Code, resp.Msg = storeCode(err), err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
}

func (s *Server) handleUpdate(sess *session, req *Request, resp *Response) {
	if err := s.store.Touch(req.Name, sess.registrarID); err != nil {
		resp.Code, resp.Msg = storeCode(err), err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
}

func (s *Server) handleDelete(sess *session, req *Request, resp *Response) {
	d, err := s.store.Get(req.Name)
	if err != nil {
		resp.Code, resp.Msg = CodeObjectNotFound, "object does not exist"
		return
	}
	if d.RegistrarID != sess.registrarID {
		resp.Code, resp.Msg = CodeAuthorization, "authorization error"
		return
	}
	if d.Status != model.StatusActive && d.Status != model.StatusAutoRenew {
		resp.Code, resp.Msg = CodeStatusProhibits, "object status prohibits operation"
		return
	}
	// A registrar delete sends the domain into the redemption period; its
	// Updated timestamp — set now — becomes the future deletion-order key.
	if err := s.store.MarkRedemption(req.Name, s.clock.Now()); err != nil {
		resp.Code, resp.Msg = storeCode(err), err.Error()
		return
	}
	resp.Code, resp.Msg = CodeOK, "command completed successfully"
}

func (s *Server) handlePoll(sess *session, req *Request, resp *Response) {
	if s.cfg.Poll == nil {
		resp.Code, resp.Msg = CodeUnknownCommand, "poll channel not offered"
		return
	}
	switch req.PollOp {
	case PollOpRequest, "":
		msg, count, ok := s.cfg.Poll.Peek(sess.registrarID)
		if !ok {
			resp.Code, resp.Msg = CodeNoMessages, "command completed successfully; no messages"
			return
		}
		resp.Code, resp.Msg = CodeAckToDequeue, "command completed successfully; ack to dequeue"
		resp.Message = &msg
		resp.MsgCount = count
	case PollOpAck:
		if err := s.cfg.Poll.Ack(sess.registrarID, req.MsgID); err != nil {
			resp.Code, resp.Msg = CodeParamRange, err.Error()
			return
		}
		resp.Code, resp.Msg = CodeOK, "command completed successfully"
		resp.MsgCount = s.cfg.Poll.Len(sess.registrarID)
	default:
		resp.Code, resp.Msg = CodeParamRange, fmt.Sprintf("unknown poll op %q", req.PollOp)
	}
}

func storeCode(err error) int {
	switch {
	case errors.Is(err, registry.ErrExists):
		return CodeObjectExists
	case errors.Is(err, registry.ErrNotFound):
		return CodeObjectNotFound
	case errors.Is(err, registry.ErrWrongRegistrar):
		return CodeAuthorization
	case errors.Is(err, registry.ErrBadAuthInfo):
		return CodeBadAuthInfo
	case errors.Is(err, registry.ErrStatusProhibits):
		return CodeStatusProhibits
	case errors.Is(err, registry.ErrBadName), errors.Is(err, registry.ErrUnknownTLD):
		return CodeParamRange
	case errors.Is(err, registry.ErrUnknownRegistrar):
		return CodeAuthError
	default:
		return CodeCommandFailed
	}
}

func toInfo(d *model.Domain) *DomainInfo {
	return &DomainInfo{
		ID:        d.ID,
		Name:      d.Name,
		Registrar: d.RegistrarID,
		Created:   d.Created,
		Updated:   d.Updated,
		Expiry:    d.Expiry,
		Status:    d.Status.String(),
	}
}
