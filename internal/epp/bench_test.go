package epp

import (
	"fmt"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
)

// benchServer stands up a store with one accreditation and a seeded domain,
// returning the server plus a connected, logged-in client over the given
// transport ("tcp" or "inproc").
func benchServer(b *testing.B, transport string) (*Server, *Client) {
	b.Helper()
	clock := simtime.NewSimClock(simtime.Day{Year: 2018, Month: time.March, Dom: 8}.At(12, 0, 0))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 1000, Name: "Bench Registrar"})
	if _, err := store.Create("taken.com", 1000, 1); err != nil {
		b.Fatal(err)
	}
	srv := NewServer(store, clock, ServerConfig{Credentials: map[int]string{1000: "tok"}})
	var client *Client
	switch transport {
	case "tcp":
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		client, err = Dial(addr.String())
		if err != nil {
			b.Fatal(err)
		}
	case "inproc":
		client = srv.ConnectInProc()
	default:
		b.Fatalf("unknown transport %q", transport)
	}
	b.Cleanup(func() {
		client.Close()
		srv.Close()
	})
	if err := client.Login(1000, "tok"); err != nil {
		b.Fatal(err)
	}
	return srv, client
}

// BenchmarkEPPFramePath measures the per-request cost of the EPP serving
// path — framing, dispatch, store access, response encoding — via the
// command mix a drop-catch client sends during the Drop: an availability
// check on a taken name plus a losing create (objectExists), the exact
// round-trip hammered thousands of times per second at 19:00 UTC. The
// allocs/op number is the PR 6 acceptance metric (≥50 % below the pre-PR
// baseline; see BENCH_6.json).
func BenchmarkEPPFramePath(b *testing.B) {
	for _, transport := range []string{"inproc", "tcp"} {
		b.Run("checkcreate/"+transport, func(b *testing.B) {
			_, client := benchServer(b, transport)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Check("taken.com"); err != nil {
					b.Fatal(err)
				}
				if _, err := client.Create("taken.com", 1); !IsCode(err, CodeObjectExists) {
					b.Fatalf("create: %v", err)
				}
			}
		})
		b.Run("info/"+transport, func(b *testing.B) {
			_, client := benchServer(b, transport)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := client.Info("taken.com"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkResponseEncode isolates the response-encoding half of the frame
// path: a create success frame (the largest common response) rendered to
// wire bytes.
func BenchmarkResponseEncode(b *testing.B) {
	now := simtime.Trunc(time.Date(2018, time.March, 8, 19, 0, 0, 0, time.UTC))
	resp := &Response{
		Code: CodeOK,
		Msg:  "command completed successfully",
		Domain: &DomainInfo{
			ID: 42, Name: "contested00.com", Registrar: 1000,
			Created: now, Updated: now, Expiry: now.AddDate(1, 0, 0),
			Status: "active",
		},
		ServerTime: now,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteFrame(discardWriter{}, resp); err != nil {
			b.Fatal(err)
		}
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

var _ = fmt.Sprintf // keep fmt imported across baseline/optimized variants
