package epp

import (
	"fmt"
	"sync"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// Message is one entry in a registrar's poll queue: the registry's offline
// notification channel (EPP <poll>, RFC 5730 §2.9.2.3). The registry uses it
// to tell sponsors about lifecycle transitions and Drop deletions of their
// domains.
type Message struct {
	ID   uint64    `json:"id"`
	Time time.Time `json:"time"`
	Text string    `json:"text"`
}

// PollQueue holds per-registrar message queues and implements
// registry.Observer. Safe for concurrent use.
type PollQueue struct {
	clock simtime.Clock

	mu     sync.Mutex
	nextID uint64
	queues map[int][]Message
	// cap bounds each registrar's queue; the oldest messages are dropped
	// beyond it, like real registries expire unacknowledged messages.
	cap int
}

// NewPollQueue returns a queue bounded at capPerRegistrar messages each
// (0 means 1024).
func NewPollQueue(clock simtime.Clock, capPerRegistrar int) *PollQueue {
	if capPerRegistrar <= 0 {
		capPerRegistrar = 1024
	}
	return &PollQueue{clock: clock, nextID: 1, queues: make(map[int][]Message), cap: capPerRegistrar}
}

// Enqueue appends a message for one registrar.
func (p *PollQueue) Enqueue(registrarID int, text string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := append(p.queues[registrarID], Message{
		ID:   p.nextID,
		Time: simtime.Trunc(p.clock.Now()),
		Text: text,
	})
	p.nextID++
	if len(q) > p.cap {
		q = q[len(q)-p.cap:]
	}
	p.queues[registrarID] = q
}

// Peek returns the oldest message and the queue length; ok=false on empty.
func (p *PollQueue) Peek(registrarID int) (msg Message, count int, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queues[registrarID]
	if len(q) == 0 {
		return Message{}, 0, false
	}
	return q[0], len(q), true
}

// Ack removes the message with the given ID if it is the oldest; EPP
// acknowledges strictly in order.
func (p *PollQueue) Ack(registrarID int, id uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	q := p.queues[registrarID]
	if len(q) == 0 {
		return fmt.Errorf("epp: poll queue empty")
	}
	if q[0].ID != id {
		return fmt.Errorf("epp: message %d is not at the head of the queue", id)
	}
	p.queues[registrarID] = q[1:]
	return nil
}

// Len returns one registrar's queue length.
func (p *PollQueue) Len(registrarID int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.queues[registrarID])
}

// DomainPurged implements registry.Observer: the sponsor is told its
// domain was deleted during the Drop.
func (p *PollQueue) DomainPurged(ev model.DeletionEvent, registrarID int) {
	p.Enqueue(registrarID, fmt.Sprintf("domain %s deleted (drop rank %d)", ev.Name, ev.Rank))
}

// DomainTransitioned implements registry.Observer: sponsors hear about
// lifecycle changes of their domains.
func (p *PollQueue) DomainTransitioned(name string, registrarID int, from, to model.Status) {
	p.Enqueue(registrarID, fmt.Sprintf("domain %s: %s -> %s", name, from, to))
}

// DomainTransferred implements registry.Observer: the losing sponsor learns
// its domain moved away.
func (p *PollQueue) DomainTransferred(name string, losingID, gainingID int) {
	p.Enqueue(losingID, fmt.Sprintf("domain %s transferred to registrar %d", name, gainingID))
}
