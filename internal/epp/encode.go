package epp

import (
	"strconv"
	"time"
	"unicode/utf8"
)

// Append-style frame encoders for the two hot wire types. During the Drop the
// EPP channel carries thousands of check/create frames per second, and the
// generic encoding/json path pays reflection plus a fresh body allocation per
// frame; these encoders append straight into a caller-owned buffer instead.
//
// The contract is strict byte identity with encoding/json: for every Request
// and every Response whose times MarshalJSON accepts, appendRequest and
// appendResponse produce exactly the bytes json.Marshal would (same field
// order, same omitempty behaviour, same string escaping including the HTML
// escapes < > &, same RFC 3339 time rendering). The invariant
// is pinned by TestAppendEncodersMatchJSON and FuzzFrameRoundTrip; any drift
// is a bug in this file, never an accepted output.

// appendRequest appends the json.Marshal rendering of r. Requests carry no
// time fields, so the encoding is infallible.
func appendRequest(dst []byte, r *Request) []byte {
	dst = append(dst, `{"cmd":`...)
	dst = appendJSONString(dst, r.Cmd)
	if r.Registrar != 0 {
		dst = append(dst, `,"registrar":`...)
		dst = strconv.AppendInt(dst, int64(r.Registrar), 10)
	}
	if r.Token != "" {
		dst = append(dst, `,"token":`...)
		dst = appendJSONString(dst, r.Token)
	}
	if r.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = appendJSONString(dst, r.Name)
	}
	if r.Years != 0 {
		dst = append(dst, `,"years":`...)
		dst = strconv.AppendInt(dst, int64(r.Years), 10)
	}
	if r.PollOp != "" {
		dst = append(dst, `,"pollOp":`...)
		dst = appendJSONString(dst, r.PollOp)
	}
	if r.MsgID != 0 {
		dst = append(dst, `,"msgID":`...)
		dst = strconv.AppendUint(dst, r.MsgID, 10)
	}
	if r.AuthInfo != "" {
		dst = append(dst, `,"authInfo":`...)
		dst = appendJSONString(dst, r.AuthInfo)
	}
	return append(dst, '}')
}

// appendResponse appends the json.Marshal rendering of r. ok is false when a
// time field is outside what time.Time.MarshalJSON accepts (year beyond
// [0, 9999] or a zone offset with a seconds component); the caller falls back
// to encoding/json, which reports the same condition as an error.
func appendResponse(dst []byte, r *Response) (_ []byte, ok bool) {
	dst = append(dst, `{"code":`...)
	dst = strconv.AppendInt(dst, int64(r.Code), 10)
	dst = append(dst, `,"msg":`...)
	dst = appendJSONString(dst, r.Msg)
	if r.Available != nil {
		dst = append(dst, `,"available":`...)
		dst = strconv.AppendBool(dst, *r.Available)
	}
	if r.Domain != nil {
		dst = append(dst, `,"domain":`...)
		if dst, ok = appendDomainInfo(dst, r.Domain); !ok {
			return dst, false
		}
	}
	if r.Message != nil {
		dst = append(dst, `,"message":{"id":`...)
		dst = strconv.AppendUint(dst, r.Message.ID, 10)
		dst = append(dst, `,"time":`...)
		if dst, ok = appendTime(dst, r.Message.Time); !ok {
			return dst, false
		}
		dst = append(dst, `,"text":`...)
		dst = appendJSONString(dst, r.Message.Text)
		dst = append(dst, '}')
	}
	if r.MsgCount != 0 {
		dst = append(dst, `,"msgCount":`...)
		dst = strconv.AppendInt(dst, int64(r.MsgCount), 10)
	}
	dst = append(dst, `,"serverTime":`...)
	if dst, ok = appendTime(dst, r.ServerTime); !ok {
		return dst, false
	}
	return append(dst, '}'), true
}

func appendDomainInfo(dst []byte, d *DomainInfo) (_ []byte, ok bool) {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, d.ID, 10)
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, d.Name)
	dst = append(dst, `,"registrar":`...)
	dst = strconv.AppendInt(dst, int64(d.Registrar), 10)
	dst = append(dst, `,"created":`...)
	if dst, ok = appendTime(dst, d.Created); !ok {
		return dst, false
	}
	dst = append(dst, `,"updated":`...)
	if dst, ok = appendTime(dst, d.Updated); !ok {
		return dst, false
	}
	dst = append(dst, `,"expiry":`...)
	if dst, ok = appendTime(dst, d.Expiry); !ok {
		return dst, false
	}
	dst = append(dst, `,"status":`...)
	dst = appendJSONString(dst, d.Status)
	if d.AuthInfo != "" {
		dst = append(dst, `,"authInfo":`...)
		dst = appendJSONString(dst, d.AuthInfo)
	}
	return append(dst, '}'), true
}

// appendTime appends the time.Time.MarshalJSON rendering of t: a quoted
// strict RFC 3339 timestamp with nanoseconds. ok is false exactly when
// MarshalJSON would error — a year outside [0, 9999] or a zone hour outside
// [0, 23] — in which case dst is returned unchanged. (Sub-minute offset
// components are silently truncated by the "Z07:00" layout, matching
// MarshalJSON.)
func appendTime(dst []byte, t time.Time) (_ []byte, ok bool) {
	if y := t.Year(); y < 0 || y > 9999 {
		return dst, false
	}
	if _, off := t.Zone(); off <= -24*3600 || off >= 24*3600 {
		return dst, false
	}
	dst = append(dst, '"')
	dst = t.AppendFormat(dst, time.RFC3339Nano)
	return append(dst, '"'), true
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, byte-identical to
// encoding/json's default (HTML-escaping) encoder: control characters, the
// quote and backslash, '<', '>' and '&' are escaped, invalid UTF-8 becomes
// the � escape, and U+2028/U+2029 are escaped for JavaScript embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
