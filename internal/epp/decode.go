package epp

import (
	"fmt"
	"math"
	"time"
	"unicode/utf16"
	"unicode/utf8"
)

// Specialised frame decoders for the two hot wire types. encoding/json's
// Unmarshal pays a scanner state machine plus reflection per frame — under a
// create storm that is two thirds of the remaining per-request allocation
// budget. These decoders walk the frame body directly, intern the strings
// the protocol fixes (command names, poll ops, canonical result messages,
// lifecycle status names) and copy only what genuinely escapes (domain
// names, tokens, free-text messages).
//
// They accept the JSON this package's encoders emit — which is byte-identical
// to json.Marshal — plus insignificant whitespace, reordered and unknown
// fields, and nulls, and they reject malformed input with an error, never a
// panic (FuzzReadFrame, FuzzFrameRoundTrip). They are deliberately stricter
// than encoding/json about exotic number forms (exponents, floats) that no
// EPP peer emits for these integer fields.

// jsonCursor is a minimal JSON pull reader over one frame body.
type jsonCursor struct {
	b []byte
	i int
	// scratch backs unescaped string values; owned by the frameReader so it
	// is reused across frames.
	scratch []byte
}

func (c *jsonCursor) errAt(what string) error {
	return fmt.Errorf("epp: decode frame: %s at offset %d", what, c.i)
}

func (c *jsonCursor) skipWS() {
	for c.i < len(c.b) {
		switch c.b[c.i] {
		case ' ', '\t', '\n', '\r':
			c.i++
		default:
			return
		}
	}
}

func (c *jsonCursor) expect(ch byte) error {
	c.skipWS()
	if c.i >= len(c.b) || c.b[c.i] != ch {
		return c.errAt(fmt.Sprintf("expected %q", ch))
	}
	c.i++
	return nil
}

// peek returns the next non-whitespace byte without consuming it.
func (c *jsonCursor) peek() (byte, error) {
	c.skipWS()
	if c.i >= len(c.b) {
		return 0, c.errAt("unexpected end of input")
	}
	return c.b[c.i], nil
}

// tryNull consumes a null literal if present.
func (c *jsonCursor) tryNull() bool {
	c.skipWS()
	if c.i+4 <= len(c.b) && string(c.b[c.i:c.i+4]) == "null" {
		c.i += 4
		return true
	}
	return false
}

// readString returns the decoded bytes of a JSON string. The result aliases
// the frame body when the string has no escapes and the cursor's scratch
// buffer otherwise — either way it is only valid until the next readString
// or the next frame, so callers must intern or copy anything they keep.
func (c *jsonCursor) readString() ([]byte, error) {
	if err := c.expect('"'); err != nil {
		return nil, err
	}
	start := c.i
	for c.i < len(c.b) {
		switch b := c.b[c.i]; {
		case b == '"':
			s := c.b[start:c.i]
			c.i++
			return s, nil
		case b == '\\':
			return c.readEscapedString(start)
		case b < 0x20:
			return nil, c.errAt("control character in string")
		default:
			c.i++
		}
	}
	return nil, c.errAt("unterminated string")
}

// readEscapedString finishes reading a string that contains escapes,
// decoding into the scratch buffer. start is the index of the first content
// byte; the cursor sits on the first backslash.
func (c *jsonCursor) readEscapedString(start int) ([]byte, error) {
	out := append(c.scratch[:0], c.b[start:c.i]...)
	for c.i < len(c.b) {
		b := c.b[c.i]
		switch {
		case b == '"':
			c.i++
			c.scratch = out
			return out, nil
		case b == '\\':
			c.i++
			if c.i >= len(c.b) {
				return nil, c.errAt("truncated escape")
			}
			switch e := c.b[c.i]; e {
			case '"', '\\', '/':
				out = append(out, e)
				c.i++
			case 'b':
				out = append(out, '\b')
				c.i++
			case 'f':
				out = append(out, '\f')
				c.i++
			case 'n':
				out = append(out, '\n')
				c.i++
			case 'r':
				out = append(out, '\r')
				c.i++
			case 't':
				out = append(out, '\t')
				c.i++
			case 'u':
				r, err := c.readHexRune()
				if err != nil {
					return nil, err
				}
				if utf16.IsSurrogate(r) {
					r2 := rune(replacementChar)
					if c.i+1 < len(c.b) && c.b[c.i] == '\\' && c.b[c.i+1] == 'u' {
						save := c.i
						c.i++ // step past the backslash onto 'u'
						lo, err := c.readHexRune()
						if err != nil {
							return nil, err
						}
						if dec := utf16.DecodeRune(r, lo); dec != replacementChar {
							r2 = dec
						} else {
							c.i = save // lone surrogate: re-scan the second escape
						}
					}
					r = r2
				}
				out = utf8.AppendRune(out, r)
			default:
				return nil, c.errAt("invalid escape")
			}
		case b < 0x20:
			return nil, c.errAt("control character in string")
		default:
			out = append(out, b)
			c.i++
		}
	}
	return nil, c.errAt("unterminated string")
}

const replacementChar = '�'

// readHexRune parses the XXXX of a \uXXXX escape; the cursor sits on 'u'.
func (c *jsonCursor) readHexRune() (rune, error) {
	if c.i+5 > len(c.b) {
		return 0, c.errAt("truncated \\u escape")
	}
	var r rune
	for _, h := range c.b[c.i+1 : c.i+5] {
		switch {
		case h >= '0' && h <= '9':
			r = r<<4 | rune(h-'0')
		case h >= 'a' && h <= 'f':
			r = r<<4 | rune(h-'a'+10)
		case h >= 'A' && h <= 'F':
			r = r<<4 | rune(h-'A'+10)
		default:
			return 0, c.errAt("invalid \\u escape")
		}
	}
	c.i += 5
	return r, nil
}

// readInt parses a JSON integer (no exponent or fraction — the protocol's
// integer fields never carry them).
func (c *jsonCursor) readInt() (int64, error) {
	c.skipWS()
	neg := false
	if c.i < len(c.b) && c.b[c.i] == '-' {
		neg = true
		c.i++
	}
	u, err := c.readDigits()
	if err != nil {
		return 0, err
	}
	if neg {
		if u > 1<<63 {
			return 0, c.errAt("integer overflow")
		}
		return -int64(u), nil
	}
	if u > math.MaxInt64 {
		return 0, c.errAt("integer overflow")
	}
	return int64(u), nil
}

func (c *jsonCursor) readUint() (uint64, error) {
	c.skipWS()
	return c.readDigits()
}

func (c *jsonCursor) readDigits() (uint64, error) {
	start := c.i
	var n uint64
	for c.i < len(c.b) && c.b[c.i] >= '0' && c.b[c.i] <= '9' {
		d := uint64(c.b[c.i] - '0')
		if n > (math.MaxUint64-d)/10 {
			return 0, c.errAt("integer overflow")
		}
		n = n*10 + d
		c.i++
	}
	if c.i == start {
		return 0, c.errAt("expected integer")
	}
	return n, nil
}

func (c *jsonCursor) readBool() (bool, error) {
	c.skipWS()
	switch {
	case c.i+4 <= len(c.b) && string(c.b[c.i:c.i+4]) == "true":
		c.i += 4
		return true, nil
	case c.i+5 <= len(c.b) && string(c.b[c.i:c.i+5]) == "false":
		c.i += 5
		return false, nil
	}
	return false, c.errAt("expected boolean")
}

// readTime parses a quoted RFC 3339 timestamp.
func (c *jsonCursor) readTime() (time.Time, error) {
	s, err := c.readString()
	if err != nil {
		return time.Time{}, err
	}
	t, err := time.Parse(time.RFC3339Nano, string(s))
	if err != nil {
		return time.Time{}, fmt.Errorf("epp: decode frame: %w", err)
	}
	return t, nil
}

// skipValue consumes any JSON value (for unknown fields).
func (c *jsonCursor) skipValue() error {
	b, err := c.peek()
	if err != nil {
		return err
	}
	switch b {
	case '"':
		_, err := c.readString()
		return err
	case '{', '[':
		open, close := b, byte('}')
		if b == '[' {
			close = ']'
		}
		depth := 0
		for c.i < len(c.b) {
			switch ch := c.b[c.i]; ch {
			case '"':
				if _, err := c.readString(); err != nil {
					return err
				}
				continue
			case open:
				depth++
			case close:
				depth--
				if depth == 0 {
					c.i++
					return nil
				}
			}
			c.i++
		}
		return c.errAt("unterminated composite")
	case 't', 'f':
		_, err := c.readBool()
		return err
	case 'n':
		if !c.tryNull() {
			return c.errAt("invalid literal")
		}
		return nil
	default:
		_, err := c.readInt()
		return err
	}
}

// object iterates the fields of a JSON object, calling field with each key.
// The key bytes are only valid inside the callback.
func (c *jsonCursor) object(field func(key []byte) error) error {
	if err := c.expect('{'); err != nil {
		return err
	}
	if b, err := c.peek(); err != nil {
		return err
	} else if b == '}' {
		c.i++
		return nil
	}
	for {
		key, err := c.readString()
		if err != nil {
			return err
		}
		if err := c.expect(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		b, err := c.peek()
		if err != nil {
			return err
		}
		switch b {
		case ',':
			c.i++
		case '}':
			c.i++
			return nil
		default:
			return c.errAt("expected ',' or '}'")
		}
	}
}

// end verifies nothing but whitespace remains.
func (c *jsonCursor) end() error {
	c.skipWS()
	if c.i != len(c.b) {
		return c.errAt("trailing data after frame")
	}
	return nil
}

// internCommand returns the canonical constant for a known command name so
// decoded requests do not allocate for the fixed protocol vocabulary.
func internCommand(b []byte) string {
	switch string(b) {
	case CmdLogin:
		return CmdLogin
	case CmdLogout:
		return CmdLogout
	case CmdCheck:
		return CmdCheck
	case CmdInfo:
		return CmdInfo
	case CmdCreate:
		return CmdCreate
	case CmdRenew:
		return CmdRenew
	case CmdUpdate:
		return CmdUpdate
	case CmdDelete:
		return CmdDelete
	case CmdPoll:
		return CmdPoll
	case CmdTransfer:
		return CmdTransfer
	}
	return string(b)
}

func internPollOp(b []byte) string {
	switch string(b) {
	case PollOpRequest:
		return PollOpRequest
	case PollOpAck:
		return PollOpAck
	}
	return string(b)
}

// internMsg returns the interned canonical result message when the wire text
// matches one, so the response frames a losing drop-catch create sees by the
// thousand decode without a message allocation.
func internMsg(b []byte) string {
	switch string(b) {
	case msgOK:
		return msgOK
	case msgLoggedOut:
		return msgLoggedOut
	case msgNoMessages:
		return msgNoMessages
	case msgAckToDequeue:
		return msgAckToDequeue
	case msgNotLoggedIn:
		return msgNotLoggedIn
	case msgAuthError:
		return msgAuthError
	case msgRateLimited:
		return msgRateLimited
	case msgObjectExists:
		return msgObjectExists
	case msgObjectNotFound:
		return msgObjectNotFound
	case msgAuthorization:
		return msgAuthorization
	case msgBadAuthInfo:
		return msgBadAuthInfo
	case msgStatusProhibits:
		return msgStatusProhibits
	}
	return string(b)
}

// internStatus interns the lifecycle status vocabulary of domain infos.
func internStatus(b []byte) string {
	switch string(b) {
	case "active":
		return "active"
	case "autoRenew":
		return "autoRenew"
	case "redemption":
		return "redemption"
	case "pendingDelete":
		return "pendingDelete"
	case "dropped":
		return "dropped"
	}
	return string(b)
}

// decodeRequest parses a request frame body into req (fully overwritten).
func decodeRequest(c *jsonCursor, req *Request) error {
	*req = Request{}
	err := c.object(func(key []byte) error {
		switch string(key) {
		case "cmd":
			s, err := c.readString()
			if err != nil {
				return err
			}
			req.Cmd = internCommand(s)
		case "registrar":
			n, err := c.readInt()
			if err != nil {
				return err
			}
			req.Registrar = int(n)
		case "token":
			s, err := c.readString()
			if err != nil {
				return err
			}
			req.Token = string(s)
		case "name":
			s, err := c.readString()
			if err != nil {
				return err
			}
			req.Name = string(s)
		case "years":
			n, err := c.readInt()
			if err != nil {
				return err
			}
			req.Years = int(n)
		case "pollOp":
			s, err := c.readString()
			if err != nil {
				return err
			}
			req.PollOp = internPollOp(s)
		case "msgID":
			n, err := c.readUint()
			if err != nil {
				return err
			}
			req.MsgID = n
		case "authInfo":
			s, err := c.readString()
			if err != nil {
				return err
			}
			req.AuthInfo = string(s)
		default:
			return c.skipValue()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return c.end()
}

// decodeResponse parses a response frame body into resp (fully overwritten).
func decodeResponse(c *jsonCursor, resp *Response) error {
	*resp = Response{}
	err := c.object(func(key []byte) error {
		switch string(key) {
		case "code":
			n, err := c.readInt()
			if err != nil {
				return err
			}
			resp.Code = int(n)
		case "msg":
			s, err := c.readString()
			if err != nil {
				return err
			}
			resp.Msg = internMsg(s)
		case "available":
			if c.tryNull() {
				return nil
			}
			v, err := c.readBool()
			if err != nil {
				return err
			}
			resp.Available = &v
		case "domain":
			if c.tryNull() {
				return nil
			}
			resp.Domain = new(DomainInfo)
			return decodeDomainInfo(c, resp.Domain)
		case "message":
			if c.tryNull() {
				return nil
			}
			resp.Message = new(Message)
			return decodeMessage(c, resp.Message)
		case "msgCount":
			n, err := c.readInt()
			if err != nil {
				return err
			}
			resp.MsgCount = int(n)
		case "serverTime":
			t, err := c.readTime()
			if err != nil {
				return err
			}
			resp.ServerTime = t
		default:
			return c.skipValue()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return c.end()
}

func decodeDomainInfo(c *jsonCursor, d *DomainInfo) error {
	return c.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			d.ID, err = c.readUint()
		case "name":
			var s []byte
			if s, err = c.readString(); err == nil {
				d.Name = string(s)
			}
		case "registrar":
			var n int64
			if n, err = c.readInt(); err == nil {
				d.Registrar = int(n)
			}
		case "created":
			d.Created, err = c.readTime()
		case "updated":
			d.Updated, err = c.readTime()
		case "expiry":
			d.Expiry, err = c.readTime()
		case "status":
			var s []byte
			if s, err = c.readString(); err == nil {
				d.Status = internStatus(s)
			}
		case "authInfo":
			var s []byte
			if s, err = c.readString(); err == nil {
				d.AuthInfo = string(s)
			}
		default:
			err = c.skipValue()
		}
		return err
	})
}

func decodeMessage(c *jsonCursor, m *Message) error {
	return c.object(func(key []byte) error {
		var err error
		switch string(key) {
		case "id":
			m.ID, err = c.readUint()
		case "time":
			m.Time, err = c.readTime()
		case "text":
			var s []byte
			if s, err = c.readString(); err == nil {
				m.Text = string(s)
			}
		default:
			err = c.skipValue()
		}
		return err
	})
}
