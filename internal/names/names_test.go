package names

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		label string
		err   error
	}{
		{"example", nil},
		{"ex-ample", nil},
		{"3com", nil},
		{"a", nil},
		{"", ErrEmpty},
		{strings.Repeat("a", 63), nil},
		{strings.Repeat("a", 64), ErrTooLong},
		{"-leading", ErrHyphenEdge},
		{"trailing-", ErrHyphenEdge},
		{"UPPER", ErrBadChar},
		{"with.dot", ErrBadChar},
		{"spa ce", ErrBadChar},
		{"uni©ode", ErrBadChar},
	}
	for _, c := range cases {
		err := Validate(c.label)
		if c.err == nil && err != nil {
			t.Errorf("Validate(%q) = %v, want nil", c.label, err)
		}
		if c.err != nil && !errors.Is(err, c.err) {
			t.Errorf("Validate(%q) = %v, want %v", c.label, err, c.err)
		}
	}
}

func TestLabel(t *testing.T) {
	if Label("example.com") != "example" {
		t.Fatal("Label failed on fqdn")
	}
	if Label("bare") != "bare" {
		t.Fatal("Label failed on bare name")
	}
}

func TestKeywordCount(t *testing.T) {
	cases := []struct {
		name string
		min  int
	}{
		{"shopdeals.com", 2},
		{"cryptocoin.com", 2},
		{"xqzvkw.com", 0},
	}
	for _, c := range cases {
		if got := KeywordCount(c.name); got < c.min {
			t.Errorf("KeywordCount(%q) = %d, want >= %d", c.name, got, c.min)
		}
	}
}

func TestDictionaryCount(t *testing.T) {
	if got := DictionaryCount("silverbrook.com"); got < 2 {
		t.Fatalf("DictionaryCount(silverbrook) = %d, want >= 2", got)
	}
	if got := DictionaryCount("zzqqxx.com"); got != 0 {
		t.Fatalf("DictionaryCount(zzqqxx) = %d, want 0", got)
	}
}

func TestWordListsDisjoint(t *testing.T) {
	kw := make(map[string]bool)
	for _, w := range Keywords() {
		kw[w] = true
	}
	for _, w := range Dictionary() {
		if kw[w] {
			t.Errorf("word %q appears in both keyword and dictionary lists", w)
		}
	}
}

func TestWordListsValid(t *testing.T) {
	for _, w := range append(Keywords(), Dictionary()...) {
		if err := Validate(w); err != nil {
			t.Errorf("word %q is not a valid label: %v", w, err)
		}
	}
}

func TestGeneratorUniqueAndValid(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(42)))
	seen := make(map[string]bool)
	for i := 0; i < 5000; i++ {
		gen := g.Next()
		if seen[gen.Label] {
			t.Fatalf("duplicate label %q at i=%d", gen.Label, i)
		}
		seen[gen.Label] = true
		if err := Validate(gen.Label); err != nil {
			t.Fatalf("invalid label %q: %v", gen.Label, err)
		}
		if gen.Value < 0 || gen.Value > 1 {
			t.Fatalf("value %f out of range for %q", gen.Value, gen.Label)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(rand.New(rand.NewSource(7)))
	b := NewGenerator(rand.New(rand.NewSource(7)))
	for i := 0; i < 100; i++ {
		ga, gb := a.Next(), b.Next()
		if ga != gb {
			t.Fatalf("generators diverged at %d: %+v vs %+v", i, ga, gb)
		}
	}
}

func TestGeneratorClassMix(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(1)))
	counts := make(map[Class]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	// Long-random should be the majority class (~50 %).
	if frac := float64(counts[ClassLongRandom]) / n; frac < 0.4 || frac > 0.6 {
		t.Fatalf("long-random fraction = %.2f, want ~0.5", frac)
	}
	for c := Class(0); c < numClasses; c++ {
		if counts[c] == 0 {
			t.Errorf("class %v never generated", c)
		}
	}
}

func TestGeneratorValueOrdering(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(2)))
	sum := make(map[Class]float64)
	n := make(map[Class]int)
	for i := 0; i < 20000; i++ {
		gen := g.Next()
		sum[gen.Class] += gen.Value
		n[gen.Class]++
	}
	mean := func(c Class) float64 { return sum[c] / float64(n[c]) }
	if mean(ClassKeywordPair) <= mean(ClassLongRandom) {
		t.Fatal("keyword pairs should be worth more than random strings")
	}
	if mean(ClassDictPair) <= mean(ClassHyphenated) {
		t.Fatal("dictionary pairs should be worth more than hyphenated names")
	}
}

func TestClassString(t *testing.T) {
	for c := Class(0); c < numClasses; c++ {
		if s := c.String(); strings.HasPrefix(s, "Class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if s := Class(200).String(); s != "Class(200)" {
		t.Errorf("unknown class String = %q", s)
	}
}

func TestTopValues(t *testing.T) {
	gs := []Generated{{Value: 0.1}, {Value: 0.9}, {Value: 0.5}}
	top := TopValues(gs, 2)
	if len(top) != 2 || top[0] != 0.9 || top[1] != 0.5 {
		t.Fatalf("TopValues = %v", top)
	}
	if got := TopValues(gs, 10); len(got) != 3 {
		t.Fatalf("TopValues over-length = %v", got)
	}
}

// Property: matcher count never exceeds len(label)/minWordLen and never
// panics on arbitrary ASCII input.
func TestMatcherCountBounds(t *testing.T) {
	f := func(s string) bool {
		lower := strings.ToLower(s)
		n := keywordMatcher.count(lower)
		return n >= 0 && n <= len(lower)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: generated labels survive a validate/relabel round trip.
func TestGeneratedAlwaysValid(t *testing.T) {
	g := NewGenerator(rand.New(rand.NewSource(99)))
	f := func() bool {
		return Validate(g.Next().Label) == nil
	}
	if err := quick.Check(func(byte) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
