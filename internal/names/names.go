// Package names generates the synthetic domain-name population for the
// registry simulator and provides the lexical analyses (keyword count,
// dictionary-word count) the paper applies to re-registered names in §4.4.
//
// Name composition drives perceived value: short names built from commercial
// keywords and dictionary words attract backorders from drop-catch services,
// while long random-letter names mostly expire unnoticed. The generator
// exposes that ground-truth value score so agent behaviour can be conditioned
// on it, but the measurement pipeline only ever sees the name itself.
package names

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Errors returned by Validate.
var (
	ErrEmpty      = errors.New("names: empty label")
	ErrTooLong    = errors.New("names: label longer than 63 octets")
	ErrBadChar    = errors.New("names: label contains a character outside [a-z0-9-]")
	ErrHyphenEdge = errors.New("names: label starts or ends with a hyphen")
)

// Validate checks that label is a well-formed LDH ("letters, digits,
// hyphen") DNS label as registries enforce for second-level names.
func Validate(label string) error {
	if label == "" {
		return ErrEmpty
	}
	if len(label) > 63 {
		return fmt.Errorf("%w: %q", ErrTooLong, label)
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return fmt.Errorf("%w: %q", ErrHyphenEdge, label)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return fmt.Errorf("%w: %q", ErrBadChar, label)
		}
	}
	return nil
}

// Label returns the second-level label of a fully qualified name
// ("example.com" → "example").
func Label(fqdn string) string {
	if i := strings.IndexByte(fqdn, '.'); i >= 0 {
		return fqdn[:i]
	}
	return fqdn
}

// matcher performs greedy longest-match segmentation against a word set.
type matcher struct {
	words  map[string]bool
	maxLen int
	minLen int
}

func newMatcher(list []string) *matcher {
	m := &matcher{words: make(map[string]bool, len(list)), minLen: 1 << 30}
	for _, w := range list {
		m.words[w] = true
		if len(w) > m.maxLen {
			m.maxLen = len(w)
		}
		if len(w) < m.minLen {
			m.minLen = len(w)
		}
	}
	return m
}

// count returns the number of non-overlapping words found in s by greedy
// longest-match scanning, the same approximation the paper applies to count
// keywords and English dictionary words in re-registered names.
func (m *matcher) count(s string) int {
	n := 0
	for i := 0; i < len(s); {
		matched := 0
		limit := m.maxLen
		if rem := len(s) - i; rem < limit {
			limit = rem
		}
		for l := limit; l >= m.minLen; l-- {
			if m.words[s[i:i+l]] {
				matched = l
				break
			}
		}
		if matched > 0 {
			n++
			i += matched
		} else {
			i++
		}
	}
	return n
}

var (
	keywordMatcher    = newMatcher(keywords)
	dictionaryMatcher = newMatcher(dictionary)
)

// KeywordCount returns the number of commercial keywords contained in the
// second-level label of name.
func KeywordCount(name string) int { return keywordMatcher.count(Label(name)) }

// DictionaryCount returns the number of English dictionary words contained
// in the second-level label of name.
func DictionaryCount(name string) int { return dictionaryMatcher.count(Label(name)) }

// Keywords returns a copy of the keyword list (exported for tests and docs).
func Keywords() []string { return append([]string(nil), keywords...) }

// Dictionary returns a copy of the dictionary word list.
func Dictionary() []string { return append([]string(nil), dictionary...) }

// Class describes how a generated label was composed. The workload model
// uses it to assign ground-truth desirability.
type Class uint8

// Composition classes, roughly ordered by decreasing market value.
const (
	ClassKeywordPair Class = iota // two commercial keywords ("cryptodeals")
	ClassDictPair                 // two dictionary words ("silverbrook")
	ClassKeywordDict              // keyword + dictionary word ("shopriver")
	ClassShortBrand               // short pronounceable coinage ("zavodo")
	ClassWordNumber               // word + digits ("casino88")
	ClassHyphenated               // hyphen-joined words ("best-loans")
	ClassLongRandom               // long low-value letter soup
	numClasses
)

// String names the class for logs and tests.
func (c Class) String() string {
	switch c {
	case ClassKeywordPair:
		return "keyword-pair"
	case ClassDictPair:
		return "dict-pair"
	case ClassKeywordDict:
		return "keyword-dict"
	case ClassShortBrand:
		return "short-brand"
	case ClassWordNumber:
		return "word-number"
	case ClassHyphenated:
		return "hyphenated"
	case ClassLongRandom:
		return "long-random"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Generated is one synthetic label together with its ground-truth value
// score in [0, 1]. Value is what backorder demand is conditioned on; it is
// hidden from the measurement side of the system.
type Generated struct {
	Label string
	Class Class
	Value float64
}

// Generator produces deterministic streams of unique labels. It is not safe
// for concurrent use; give each goroutine its own Generator.
type Generator struct {
	rng  *rand.Rand
	seen map[string]bool
	// classWeights is the cumulative distribution over composition classes.
	classCum [numClasses]float64
}

// NewGenerator returns a Generator drawing from rng. The class mix is fixed
// to a distribution that makes valuable names a small minority, matching the
// observation that only ~10 % of deleted domains attract any re-registration.
func NewGenerator(rng *rand.Rand) *Generator {
	g := &Generator{rng: rng, seen: make(map[string]bool)}
	weights := [numClasses]float64{
		ClassKeywordPair: 0.06,
		ClassDictPair:    0.08,
		ClassKeywordDict: 0.08,
		ClassShortBrand:  0.10,
		ClassWordNumber:  0.10,
		ClassHyphenated:  0.08,
		ClassLongRandom:  0.50,
	}
	sum := 0.0
	for i, w := range weights {
		sum += w
		g.classCum[i] = sum
	}
	return g
}

const consonants = "bcdfghjklmnpqrstvwz"
const vowels = "aeiou"

func (g *Generator) pick(list []string) string { return list[g.rng.Intn(len(list))] }

func (g *Generator) brand(syllables int) string {
	var b strings.Builder
	for i := 0; i < syllables; i++ {
		b.WriteByte(consonants[g.rng.Intn(len(consonants))])
		b.WriteByte(vowels[g.rng.Intn(len(vowels))])
	}
	return b.String()
}

func (g *Generator) random(n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[g.rng.Intn(len(alphabet))]
	}
	// LDH labels may not start with a hyphen; the alphabet has none, but a
	// leading digit is fine for registries.
	return string(b)
}

// value maps a class and label length to a ground-truth desirability score.
func value(c Class, label string, rng *rand.Rand) float64 {
	base := map[Class]float64{
		ClassKeywordPair: 0.80,
		ClassDictPair:    0.70,
		ClassKeywordDict: 0.72,
		ClassShortBrand:  0.55,
		ClassWordNumber:  0.40,
		ClassHyphenated:  0.25,
		ClassLongRandom:  0.04,
	}[c]
	// Shorter is better: up to +0.15 for very short labels.
	shortBonus := 0.15 * (1.0 - float64(min(len(label), 20))/20.0)
	jitter := rng.Float64()*0.10 - 0.05
	v := base + shortBonus + jitter
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}

// Next generates a fresh unique label. It never returns an invalid label and
// never repeats one within a Generator's lifetime.
func (g *Generator) Next() Generated {
	for {
		c := g.class()
		label := g.compose(c)
		if g.seen[label] || Validate(label) != nil {
			continue
		}
		g.seen[label] = true
		return Generated{Label: label, Class: c, Value: value(c, label, g.rng)}
	}
}

func (g *Generator) class() Class {
	r := g.rng.Float64() * g.classCum[numClasses-1]
	for i := Class(0); i < numClasses; i++ {
		if r <= g.classCum[i] {
			return i
		}
	}
	return ClassLongRandom
}

func (g *Generator) compose(c Class) string {
	switch c {
	case ClassKeywordPair:
		return g.pick(keywords) + g.pick(keywords)
	case ClassDictPair:
		return g.pick(dictionary) + g.pick(dictionary)
	case ClassKeywordDict:
		if g.rng.Intn(2) == 0 {
			return g.pick(keywords) + g.pick(dictionary)
		}
		return g.pick(dictionary) + g.pick(keywords)
	case ClassShortBrand:
		return g.brand(2 + g.rng.Intn(2))
	case ClassWordNumber:
		w := g.pick(keywords)
		if g.rng.Intn(2) == 0 {
			w = g.pick(dictionary)
		}
		return fmt.Sprintf("%s%d", w, g.rng.Intn(1000))
	case ClassHyphenated:
		return g.pick(dictionary) + "-" + g.pick(keywords)
	default:
		return g.random(10 + g.rng.Intn(14))
	}
}

// TopValues returns the n highest ground-truth values from a sample of
// generated names; used by tests to sanity-check the demand model.
func TopValues(gs []Generated, n int) []float64 {
	vs := make([]float64, len(gs))
	for i, g := range gs {
		vs[i] = g.Value
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vs)))
	if n > len(vs) {
		n = len(vs)
	}
	return vs[:n]
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
