package core

import (
	"sort"
	"time"
)

// Interval is one adaptive delay interval from §4.4: intervals grow until
// they contain at least a minimum number of domains, and cannot split
// domains sharing the same (second-precision) delay.
type Interval struct {
	// Lo and Hi bound the delays contained, inclusive on both ends.
	Lo, Hi time.Duration
	// Items are the delay results inside the interval, sorted by delay.
	Items []DelayResult
}

// Count returns the number of domains in the interval.
func (iv *Interval) Count() int { return len(iv.Items) }

// BuildIntervals groups delay results (filtered to delay ≤ horizon) into
// consecutive variable-length intervals of at least minCount domains each.
// The final interval may fall short of minCount; it is merged into its
// predecessor when one exists, matching the paper's "at least 8 k domains"
// construction.
func BuildIntervals(delays []DelayResult, horizon time.Duration, minCount int) []Interval {
	inHorizon := make([]DelayResult, 0, len(delays))
	for _, d := range delays {
		if d.Delay <= horizon {
			inHorizon = append(inHorizon, d)
		}
	}
	sort.SliceStable(inHorizon, func(i, j int) bool { return inHorizon[i].Delay < inHorizon[j].Delay })

	var out []Interval
	i := 0
	for i < len(inHorizon) {
		j := i
		// Grow until minCount reached...
		for j < len(inHorizon) && j-i < minCount {
			j++
		}
		// ...then absorb the tie run: never split equal delays.
		for j > i && j < len(inHorizon) && inHorizon[j].Delay == inHorizon[j-1].Delay {
			j++
		}
		out = append(out, Interval{
			Lo:    inHorizon[i].Delay,
			Hi:    inHorizon[j-1].Delay,
			Items: inHorizon[i:j],
		})
		i = j
	}
	// Merge an undersized final interval into its predecessor.
	if n := len(out); n >= 2 && out[n-1].Count() < minCount {
		prev := &out[n-2]
		prev.Hi = out[n-1].Hi
		prev.Items = append(prev.Items, out[n-1].Items...)
		out = out[:n-1]
	}
	return out
}

// Share is one group's share of an interval, in [0, 1].
type Share struct {
	Key   string
	Value float64
}

// MarketShare computes, for each interval, the share of domains per group
// key (registrar cluster, age bucket, ...). Keys mapping to "" are counted
// under "other".
func MarketShare(intervals []Interval, keyOf func(DelayResult) string) [][]Share {
	out := make([][]Share, len(intervals))
	for i, iv := range intervals {
		counts := make(map[string]int)
		for _, d := range iv.Items {
			k := keyOf(d)
			if k == "" {
				k = "other"
			}
			counts[k]++
		}
		shares := make([]Share, 0, len(counts))
		for k, c := range counts {
			shares = append(shares, Share{Key: k, Value: float64(c) / float64(len(iv.Items))})
		}
		sort.Slice(shares, func(a, b int) bool {
			if shares[a].Value != shares[b].Value {
				return shares[a].Value > shares[b].Value
			}
			return shares[a].Key < shares[b].Key
		})
		out[i] = shares
	}
	return out
}

// ShareOf extracts one key's share from a MarketShare row, zero when absent.
func ShareOf(shares []Share, key string) float64 {
	for _, s := range shares {
		if s.Key == key {
			return s.Value
		}
	}
	return 0
}
