package core

import (
	"testing"
	"time"

	"dropzero/internal/model"
)

func TestAnalyzeDayDelays(t *testing.T) {
	// Ranks 0..9 deleted at seconds 0..9. Rank 4 re-registered 100 s late,
	// rank 7 not re-registered at all.
	var obs []*model.Observation
	for i := 0; i < 10; i++ {
		switch i {
		case 4:
			obs = append(obs, obsAt(i, i+100))
		case 7:
			obs = append(obs, obsNoRereg(i))
		default:
			obs = append(obs, obsAt(i, i))
		}
	}
	da, err := AnalyzeDay(testDay, obs, DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if da.Total != 10 {
		t.Fatalf("total = %d", da.Total)
	}
	if len(da.Delays) != 9 {
		t.Fatalf("delays = %d, want 9 (one never re-registered)", len(da.Delays))
	}
	byName := make(map[string]DelayResult)
	for _, d := range da.Delays {
		byName[d.Obs.Name] = d
	}
	if d := byName["d4.com"]; d.Delay != 100*time.Second || d.Method != MethodInterpolated {
		t.Fatalf("rank 4: %+v", d)
	}
	if d := byName["d0.com"]; d.Delay != 0 || d.Method != MethodExact {
		t.Fatalf("rank 0: %+v", d)
	}
}

func TestAnalyzeDayNegativeDelayClamped(t *testing.T) {
	// Construct interpolation that rounds up past an observed point: the
	// resulting negative delay must clamp to zero.
	obs := []*model.Observation{
		obsAt(0, 0),
		obsNoRereg(1),
		obsAt(2, 1), // on the curve
		obsAt(3, 1),
	}
	da, err := AnalyzeDay(testDay, obs, DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range da.Delays {
		if d.Delay < 0 {
			t.Fatalf("negative delay %v for %s", d.Delay, d.Obs.Name)
		}
	}
}

func TestAnalyzeDayNextDayDelay(t *testing.T) {
	// A next-day re-registration gets its delay measured against the
	// deletion-day envelope.
	late := obsAt(2, 0)
	late.Rereg.Time = testDay.Next().At(3, 0, 0)
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 1), late}
	da, err := AnalyzeDay(testDay, obs, DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	var found *DelayResult
	for i := range da.Delays {
		if da.Delays[i].Obs == late {
			found = &da.Delays[i]
		}
	}
	if found == nil {
		t.Fatal("next-day rereg missing from delays")
	}
	// Deleted ≈ 19:00:01 (clamped to curve end), re-registered 03:00 next
	// day → delay ≈ 8 h.
	if found.Delay < 7*time.Hour || found.Delay > 9*time.Hour {
		t.Fatalf("next-day delay = %v", found.Delay)
	}
}

func TestAnalyzeAllSkipsEmptyDays(t *testing.T) {
	day2 := testDay.Next()
	o := obsNoRereg(0)
	o2 := obsAt(1, 0)
	o2dup := *o2
	o2dup.DeleteDay = day2
	o2dup.Rereg = &model.Rereg{Time: day2.At(19, 0, 0)}
	obs := []*model.Observation{o, &o2dup}
	// testDay has no re-registrations → skipped; day2 has one.
	days, skipped := AnalyzeAll(obs, DefaultEnvelopeConfig())
	if skipped != 1 || len(days) != 1 {
		t.Fatalf("days=%d skipped=%d", len(days), skipped)
	}
	if days[0].Day != day2 {
		t.Fatalf("kept day = %v", days[0].Day)
	}
}

func TestDelayCDFDenominatorIsDeleted(t *testing.T) {
	// 4 deleted, 2 re-registered at 0 s → CDF at 0 must be 0.5 even though
	// 100 % of *re-registrations* are instant.
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 0), obsNoRereg(2), obsNoRereg(3)}
	days, _ := AnalyzeAll(obs, DefaultEnvelopeConfig())
	cdf := DelayCDF(days, 24*time.Hour, []time.Duration{0, time.Hour})
	if cdf[0] != 0.5 || cdf[1] != 0.5 {
		t.Fatalf("cdf = %v", cdf)
	}
}

func TestDelayCDFHorizonFilter(t *testing.T) {
	late := obsAt(1, 0)
	late.Rereg.Time = testDay.AddDays(3).At(19, 0, 0)
	obs := []*model.Observation{obsAt(0, 0), late}
	days, _ := AnalyzeAll(obs, DefaultEnvelopeConfig())
	cdf := DelayCDF(days, 24*time.Hour, []time.Duration{24 * time.Hour})
	if cdf[0] != 0.5 {
		t.Fatalf("cdf with horizon = %v", cdf)
	}
}

func TestDelayCDFEmpty(t *testing.T) {
	out := DelayCDF(nil, time.Hour, []time.Duration{0, time.Second})
	if len(out) != 2 || out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty cdf = %v", out)
	}
}

func TestMethodShares(t *testing.T) {
	obs := []*model.Observation{obsAt(0, 0), obsNoRereg(1), obsAt(2, 0), obsAt(3, 50)}
	days, _ := AnalyzeAll(obs, DefaultEnvelopeConfig())
	shares := MethodShares(days)
	total := 0.0
	for _, v := range shares {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("method shares sum to %f", total)
	}
}

func TestTotalDeletedAndAllDelays(t *testing.T) {
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 2), obsNoRereg(2)}
	days, _ := AnalyzeAll(obs, DefaultEnvelopeConfig())
	if got := TotalDeleted(days); got != 3 {
		t.Fatalf("TotalDeleted = %d", got)
	}
	if got := len(AllDelays(days)); got != 2 {
		t.Fatalf("AllDelays = %d", got)
	}
}
