package core

import (
	"math"
	"sort"
	"time"
)

// Regression is the straight-line baseline the paper considers and rejects
// in §4.2: fit re-registration time as a linear function of deletion rank by
// least squares over the same-day re-registrations, instead of tracing the
// minimum envelope. Deviations of the true deletion process from a straight
// line (stalls, interleaved .net batches, day-specific slopes) make its
// errors minutes-order, which the inference-accuracy ablation demonstrates.
type Regression struct {
	// Intercept is the predicted time at rank 0.
	Intercept time.Time
	// SecPerRank is the slope in seconds per rank.
	SecPerRank float64
	n          int
}

// FitRegression fits the baseline over one day's same-day re-registrations.
// It returns nil when fewer than two points exist.
func FitRegression(ranked []Ranked) *Regression {
	var xs, ys []float64
	var t0 time.Time
	for _, r := range ranked {
		if !r.Obs.SameDayRereg() {
			continue
		}
		if t0.IsZero() {
			t0 = r.Obs.Rereg.Time
		}
		xs = append(xs, float64(r.Rank))
		ys = append(ys, r.Obs.Rereg.Time.Sub(t0).Seconds())
	}
	if len(xs) < 2 {
		return nil
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return nil
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	return &Regression{
		Intercept:  t0.Add(time.Duration(math.Round(intercept * float64(time.Second)))),
		SecPerRank: slope,
		n:          len(xs),
	}
}

// PredictAt returns the fitted earliest time for a rank, rounded to seconds.
func (r *Regression) PredictAt(rank int) time.Time {
	off := time.Duration(math.Round(r.SecPerRank*float64(rank))) * time.Second
	return r.Intercept.Add(off)
}

// N returns the number of points the line was fitted over.
func (r *Regression) N() int { return r.n }

// AccuracyStats compares predicted earliest times against ground-truth
// deletion instants (available only from the simulator). All values are
// absolute errors.
type AccuracyStats struct {
	N      int
	Mean   time.Duration
	Median time.Duration
	P99    time.Duration
	Max    time.Duration
}

// Accuracy summarises absolute errors between prediction and truth.
// predict maps a rank to a predicted time; truth lists (rank, true time).
func Accuracy(points []Point, predict func(rank int) time.Time) AccuracyStats {
	if len(points) == 0 {
		return AccuracyStats{}
	}
	errs := make([]time.Duration, 0, len(points))
	var sum time.Duration
	for _, p := range points {
		e := predict(p.Rank).Sub(p.Time)
		if e < 0 {
			e = -e
		}
		errs = append(errs, e)
		sum += e
	}
	sortDurations(errs)
	return AccuracyStats{
		N:      len(errs),
		Mean:   sum / time.Duration(len(errs)),
		Median: errs[(len(errs)-1)/2],
		P99:    errs[(len(errs)-1)*99/100],
		Max:    errs[len(errs)-1],
	}
}

func sortDurations(ds []time.Duration) {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
}
