package core

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

var testDay = simtime.Day{Year: 2018, Month: time.January, Dom: 2}

// obsAt builds a same-day re-registered observation whose deletion-order key
// is its index (Updated strictly increasing), re-registered at the given
// offset (in seconds) from 19:00.
func obsAt(i int, reregOffsetSec int) *model.Observation {
	updated := testDay.AddDays(-35).At(6, 0, 0).Add(time.Duration(i) * time.Second)
	return &model.Observation{
		Name:      "d" + itoa(i) + ".com",
		TLD:       model.COM,
		DeleteDay: testDay,
		Prior: model.PriorRegistration{
			ID:      uint64(i + 1),
			Created: updated.AddDate(-2, 0, 0),
			Updated: updated,
			Expiry:  updated.AddDate(0, 0, -30),
		},
		Rereg: &model.Rereg{Time: testDay.At(19, 0, reregOffsetSec), RegistrarID: 9000},
	}
}

// obsNoRereg builds an observation without a re-registration.
func obsNoRereg(i int) *model.Observation {
	o := obsAt(i, 0)
	o.Rereg = nil
	return o
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func rankAll(obs []*model.Observation) []Ranked { return Rank(obs, OrderLastUpdate) }

func TestEnvelopeBasicDiagonal(t *testing.T) {
	// Ranks 0..9 re-registered at exactly their deletion seconds 0..9.
	var obs []*model.Observation
	for i := 0; i < 10; i++ {
		obs = append(obs, obsAt(i, i))
	}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 10 {
		t.Fatalf("envelope size = %d, want 10", env.Len())
	}
	for rank := 0; rank < 10; rank++ {
		got, method := env.EarliestAt(rank)
		if method != MethodExact {
			t.Fatalf("rank %d method = %v", rank, method)
		}
		if want := testDay.At(19, 0, rank); !got.Equal(want) {
			t.Fatalf("rank %d earliest = %v, want %v", rank, got, want)
		}
	}
}

func TestEnvelopeExcludesDelayedPoints(t *testing.T) {
	// Rank 5 is re-registered late; it must not be on the curve, and its
	// earliest time must be interpolated between ranks 4 and 6.
	var obs []*model.Observation
	for i := 0; i < 10; i++ {
		off := i
		if i == 5 {
			off = 3000 // much later
		}
		obs = append(obs, obsAt(i, off))
	}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 9 {
		t.Fatalf("envelope size = %d, want 9", env.Len())
	}
	got, method := env.EarliestAt(5)
	if method != MethodInterpolated {
		t.Fatalf("rank 5 method = %v", method)
	}
	if want := testDay.At(19, 0, 5); !got.Equal(want) {
		t.Fatalf("rank 5 earliest = %v, want %v", got, want)
	}
}

func TestEnvelopeMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var obs []*model.Observation
	for i := 0; i < 500; i++ {
		// Deletion second ≈ i/5; most re-registrations instant, others late.
		off := i / 5
		if rng.Intn(3) == 0 {
			off += rng.Intn(1800)
		}
		obs = append(obs, obsAt(i, off))
	}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	pts := env.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].Time.Before(pts[i-1].Time) {
			t.Fatalf("envelope not monotone at %d", i)
		}
		if pts[i].Rank <= pts[i-1].Rank {
			t.Fatalf("envelope ranks not increasing at %d", i)
		}
	}
}

func TestEnvelopeNoPointBelow(t *testing.T) {
	// Every same-day re-registration must lie on or above the envelope.
	rng := rand.New(rand.NewSource(2))
	var obs []*model.Observation
	for i := 0; i < 400; i++ {
		off := i/4 + rng.Intn(600)
		obs = append(obs, obsAt(i, off))
	}
	ranked := rankAll(obs)
	env, err := BuildEnvelope(ranked, DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ranked {
		earliest, _ := env.EarliestAt(r.Rank)
		// Interpolation rounds to the nearest second, so allow 1 s slack.
		if r.Obs.Rereg.Time.Add(time.Second).Before(earliest) {
			t.Fatalf("rank %d re-registered at %v, below envelope %v",
				r.Rank, r.Obs.Rereg.Time, earliest)
		}
	}
}

func TestEnvelopeTailTruncation(t *testing.T) {
	// A monotone sequence whose last point is 10 minutes after the rest:
	// the §4.2 truncation must drop it.
	var obs []*model.Observation
	for i := 0; i < 20; i++ {
		obs = append(obs, obsAt(i, i))
	}
	obs = append(obs, obsAt(20, 620))
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 20 {
		t.Fatalf("envelope size = %d, want 20 (tail outlier dropped)", env.Len())
	}
	if _, method := env.EarliestAt(20); method != MethodClampedHigh {
		t.Fatalf("rank 20 method = %v, want clamped-high", method)
	}
}

func TestEnvelopeTailTruncationCascades(t *testing.T) {
	// Two trailing outliers, each separated by more than the gap: both go.
	var obs []*model.Observation
	for i := 0; i < 20; i++ {
		obs = append(obs, obsAt(i, i))
	}
	obs = append(obs, obsAt(20, 500), obsAt(21, 900))
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 20 {
		t.Fatalf("envelope size = %d, want 20", env.Len())
	}
}

func TestEnvelopeClampLow(t *testing.T) {
	// No re-registration at ranks 0..4: low ranks clamp to the first point.
	var obs []*model.Observation
	for i := 0; i < 5; i++ {
		obs = append(obs, obsNoRereg(i))
	}
	for i := 5; i < 15; i++ {
		obs = append(obs, obsAt(i, i))
	}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, method := env.EarliestAt(0)
	if method != MethodClampedLow {
		t.Fatalf("rank 0 method = %v", method)
	}
	if want := testDay.At(19, 0, 5); !got.Equal(want) {
		t.Fatalf("rank 0 earliest = %v, want %v", got, want)
	}
}

func TestEnvelopeInterpolationRounding(t *testing.T) {
	// Points at (0, 0 s) and (3, 10 s): rank 1 interpolates to 3.33 s → 3 s,
	// rank 2 to 6.67 s → 7 s.
	obs := []*model.Observation{
		obsAt(0, 0),
		obsNoRereg(1),
		obsNoRereg(2),
		obsAt(3, 10),
	}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	got1, m1 := env.EarliestAt(1)
	got2, m2 := env.EarliestAt(2)
	if m1 != MethodInterpolated || m2 != MethodInterpolated {
		t.Fatalf("methods = %v, %v", m1, m2)
	}
	if want := testDay.At(19, 0, 3); !got1.Equal(want) {
		t.Fatalf("rank 1 = %v, want %v", got1, want)
	}
	if want := testDay.At(19, 0, 7); !got2.Equal(want) {
		t.Fatalf("rank 2 = %v, want %v", got2, want)
	}
}

func TestEnvelopeEmpty(t *testing.T) {
	obs := []*model.Observation{obsNoRereg(0), obsNoRereg(1)}
	_, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if !errors.Is(err, ErrEmptyEnvelope) {
		t.Fatalf("empty envelope error = %v", err)
	}
}

func TestEnvelopeSinglePoint(t *testing.T) {
	obs := []*model.Observation{obsAt(0, 5), obsNoRereg(1), obsNoRereg(2)}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 1 {
		t.Fatalf("size = %d", env.Len())
	}
	if got, m := env.EarliestAt(2); m != MethodClampedHigh || !got.Equal(testDay.At(19, 0, 5)) {
		t.Fatalf("clamp high on single point: %v %v", got, m)
	}
	if !env.Start().Equal(env.End()) {
		t.Fatal("single-point start != end")
	}
}

func TestEnvelopeNextDayReregIgnored(t *testing.T) {
	// Re-registrations after midnight are not same-day and must not shape
	// the curve.
	o := obsAt(3, 0)
	o.Rereg.Time = testDay.Next().At(1, 0, 0)
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 1), obsAt(2, 2), o}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if env.Len() != 3 {
		t.Fatalf("size = %d, want 3", env.Len())
	}
}

func TestEnvelopeGaps(t *testing.T) {
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 1), obsAt(2, 3), obsAt(3, 30)}
	env, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	g := env.Gaps()
	if g.Points != 4 {
		t.Fatalf("points = %d", g.Points)
	}
	if g.MaxGap != 27*time.Second {
		t.Fatalf("max gap = %v", g.MaxGap)
	}
	if g.P50Gap != 2*time.Second {
		t.Fatalf("p50 gap = %v", g.P50Gap)
	}
}

func TestEnvelopeRegistrars(t *testing.T) {
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 1)}
	obs[0].Rereg.RegistrarID = 1
	obs[1].Rereg.RegistrarID = 2
	ranked := rankAll(obs)
	env, err := BuildEnvelope(ranked, DefaultEnvelopeConfig())
	if err != nil {
		t.Fatal(err)
	}
	counts := EnvelopeRegistrars(ranked, env)
	if counts[1] != 1 || counts[2] != 1 {
		t.Fatalf("registrar counts = %v", counts)
	}
}

// Property: the envelope is always monotone non-decreasing in time and
// strictly increasing in rank, no retained point exceeds any later retained
// point, and EarliestAt never returns a time outside [Start, End].
func TestEnvelopeProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		var obs []*model.Observation
		for i := 0; i < n; i++ {
			off := i/3 + rng.Intn(2000)
			if rng.Intn(4) == 0 {
				obs = append(obs, obsNoRereg(i))
			} else {
				obs = append(obs, obsAt(i, off))
			}
		}
		ranked := rankAll(obs)
		env, err := BuildEnvelope(ranked, DefaultEnvelopeConfig())
		if errors.Is(err, ErrEmptyEnvelope) {
			return true
		}
		if err != nil {
			return false
		}
		pts := env.Points()
		if !sort.SliceIsSorted(pts, func(i, j int) bool { return pts[i].Rank < pts[j].Rank }) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Time.Before(pts[i-1].Time) {
				return false
			}
		}
		for rank := -5; rank < n+5; rank++ {
			got, _ := env.EarliestAt(rank)
			if got.Before(env.Start()) || got.After(env.End()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a *delayed* re-registration never lowers the envelope at
// any rank (delayed points cannot fabricate earlier availability).
func TestEnvelopeDelayedPointsCannotLower(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		var obs []*model.Observation
		for i := 0; i < n; i++ {
			obs = append(obs, obsAt(i, i/3))
		}
		base, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
		if err != nil {
			return false
		}
		// Replace one observation with a delayed re-registration (still
		// same-day, after its original instant).
		k := rng.Intn(n)
		obs[k] = obsAt(k, k/3+1+rng.Intn(100))
		mod, err := BuildEnvelope(rankAll(obs), DefaultEnvelopeConfig())
		if err != nil {
			return false
		}
		for rank := 0; rank < n; rank++ {
			b, _ := base.EarliestAt(rank)
			m, _ := mod.EarliestAt(rank)
			// Allow 1 s slack for interpolation rounding.
			if m.Add(time.Second).Before(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
