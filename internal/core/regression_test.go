package core

import (
	"math"
	"testing"
	"time"

	"dropzero/internal/model"
)

func TestFitRegressionRecoversLine(t *testing.T) {
	// Re-registrations exactly on time = 19:00 + rank/2 seconds.
	var obs []*model.Observation
	for i := 0; i < 100; i++ {
		obs = append(obs, obsAt(i, i/2))
	}
	r := FitRegression(Rank(obs, OrderLastUpdate))
	if r == nil {
		t.Fatal("nil regression")
	}
	if math.Abs(r.SecPerRank-0.5) > 0.02 {
		t.Fatalf("slope = %f, want ≈0.5", r.SecPerRank)
	}
	if got := r.PredictAt(50); got.Sub(testDay.At(19, 0, 25)) > 2*time.Second ||
		testDay.At(19, 0, 25).Sub(got) > 2*time.Second {
		t.Fatalf("PredictAt(50) = %v", got)
	}
	if r.N() != 100 {
		t.Fatalf("N = %d", r.N())
	}
}

func TestFitRegressionTooFewPoints(t *testing.T) {
	if r := FitRegression(Rank([]*model.Observation{obsAt(0, 0)}, OrderLastUpdate)); r != nil {
		t.Fatal("regression fit with one point")
	}
	if r := FitRegression(nil); r != nil {
		t.Fatal("regression fit with no points")
	}
}

func TestFitRegressionIgnoresNextDay(t *testing.T) {
	late := obsAt(2, 0)
	late.Rereg.Time = testDay.Next().At(4, 0, 0)
	obs := []*model.Observation{obsAt(0, 0), obsAt(1, 1), late}
	r := FitRegression(Rank(obs, OrderLastUpdate))
	if r == nil {
		t.Fatal("nil regression")
	}
	// Slope from two same-day points is 1 s/rank; a next-day point would
	// have wrecked it.
	if math.Abs(r.SecPerRank-1) > 0.01 {
		t.Fatalf("slope = %f", r.SecPerRank)
	}
}

func TestAccuracyStats(t *testing.T) {
	truth := []Point{
		{Rank: 0, Time: testDay.At(19, 0, 0)},
		{Rank: 1, Time: testDay.At(19, 0, 10)},
		{Rank: 2, Time: testDay.At(19, 0, 20)},
	}
	predict := func(rank int) time.Time {
		// Always 5 s late.
		return truth[rank].Time.Add(5 * time.Second)
	}
	st := Accuracy(truth, predict)
	if st.N != 3 || st.Mean != 5*time.Second || st.Median != 5*time.Second || st.Max != 5*time.Second {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAccuracyAbsoluteValue(t *testing.T) {
	truth := []Point{{Rank: 0, Time: testDay.At(19, 0, 10)}}
	st := Accuracy(truth, func(int) time.Time { return testDay.At(19, 0, 0) })
	if st.Mean != 10*time.Second {
		t.Fatalf("negative error not absolute: %+v", st)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	st := Accuracy(nil, func(int) time.Time { return time.Time{} })
	if st.N != 0 || st.Mean != 0 {
		t.Fatalf("empty stats = %+v", st)
	}
}

// The headline ablation property at unit scale: on data with stalls (a
// nonlinear deletion curve), the envelope's error stays within seconds while
// the straight-line fit drifts to minutes.
func TestEnvelopeBeatsRegressionOnNonlinearCurve(t *testing.T) {
	var obs []*model.Observation
	var truth []Point
	sec := 0
	for i := 0; i < 2000; i++ {
		if i%500 == 499 {
			sec += 120 // stall: the real process pauses two minutes
		}
		if i%3 == 0 {
			sec++
		}
		obs = append(obs, obsAt(i, sec))
		truth = append(truth, Point{Rank: i, Time: testDay.At(19, 0, 0).Add(time.Duration(sec) * time.Second)})
	}
	ranked := Rank(obs, OrderLastUpdate)
	env, err := BuildEnvelope(ranked, EnvelopeConfig{TruncateGap: 3 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	regr := FitRegression(ranked)
	envStats := Accuracy(truth, func(rank int) time.Time {
		tm, _ := env.EarliestAt(rank)
		return tm
	})
	regStats := Accuracy(truth, regr.PredictAt)
	if envStats.Max > 2*time.Second {
		t.Fatalf("envelope max error = %v", envStats.Max)
	}
	if regStats.Mean < 10*time.Second {
		t.Fatalf("regression mean error suspiciously low: %v", regStats.Mean)
	}
	if regStats.Mean < 4*envStats.Mean {
		t.Fatalf("envelope should beat regression clearly: env=%v reg=%v",
			envStats.Mean, regStats.Mean)
	}
}
