package core

import (
	"errors"
	"math"
	"sort"
	"time"

	"dropzero/internal/model"
)

// EnvelopeConfig parameterises the minimum-envelope computation.
type EnvelopeConfig struct {
	// TruncateGap is the §4.2 end-of-Drop detector: trailing curve points
	// separated from their predecessor by more than this duration are
	// removed, because a large jump at the right end indicates a delayed
	// re-registration rather than an as-early-as-possible one. The paper
	// uses one minute.
	TruncateGap time.Duration
}

// DefaultEnvelopeConfig returns the paper's parameters.
func DefaultEnvelopeConfig() EnvelopeConfig {
	return EnvelopeConfig{TruncateGap: time.Minute}
}

// Point is one (deletion rank, re-registration time) sample on an envelope.
type Point struct {
	Rank int
	Time time.Time
}

// Method records how an earliest-possible time was derived for a rank.
type Method int

// Derivation methods, with the shares the paper reports: 52 % exact, 48 %
// interpolated, 0.02 % clamped.
const (
	// MethodExact: the rank is itself a point on the envelope.
	MethodExact Method = iota
	// MethodInterpolated: linear interpolation between the neighbouring
	// envelope points, rounded to the nearest second.
	MethodInterpolated
	// MethodClampedLow: rank below the first envelope point; its time is used.
	MethodClampedLow
	// MethodClampedHigh: rank above the last envelope point; its time is used.
	MethodClampedHigh
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodExact:
		return "exact"
	case MethodInterpolated:
		return "interpolated"
	case MethodClampedLow:
		return "clamped-low"
	case MethodClampedHigh:
		return "clamped-high"
	default:
		return "unknown"
	}
}

// ErrEmptyEnvelope is returned when a day has no same-day re-registrations
// to build a curve from.
var ErrEmptyEnvelope = errors.New("core: no same-day re-registrations to build envelope")

// Envelope is one deletion day's minimum-envelope curve: a sequence of
// re-registrations in deletion order whose timestamps are monotonically
// non-decreasing and minimal. It models the earliest possible
// re-registration instant as a function of deletion rank.
type Envelope struct {
	points []Point
	cfg    EnvelopeConfig
}

// BuildEnvelope computes the curve from one day's ranked observations,
// using only domains re-registered on their deletion day. Implements §4.2:
// iterate over ranks from right to left, retaining any re-registration whose
// timestamp is no larger than the minimum previously added, then truncate
// trailing points separated by more than cfg.TruncateGap.
func BuildEnvelope(ranked []Ranked, cfg EnvelopeConfig) (*Envelope, error) {
	if cfg.TruncateGap == 0 {
		cfg = DefaultEnvelopeConfig()
	}
	pts := make([]Point, 0, len(ranked))
	for _, r := range ranked {
		if r.Obs.SameDayRereg() {
			pts = append(pts, Point{Rank: r.Rank, Time: r.Obs.Rereg.Time})
		}
	}
	if len(pts) == 0 {
		return nil, ErrEmptyEnvelope
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].Rank < pts[j].Rank })

	// Right-to-left monotone minimum scan.
	kept := make([]Point, 0, len(pts))
	minSoFar := time.Time{}
	for i := len(pts) - 1; i >= 0; i-- {
		if minSoFar.IsZero() || !pts[i].Time.After(minSoFar) {
			kept = append(kept, pts[i])
			minSoFar = pts[i].Time
		}
	}
	// Reverse into rank order.
	for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
		kept[i], kept[j] = kept[j], kept[i]
	}

	// Truncate tail outliers: drop trailing points while the gap between the
	// last two points exceeds TruncateGap.
	for len(kept) >= 2 {
		last, prev := kept[len(kept)-1], kept[len(kept)-2]
		if last.Time.Sub(prev.Time) > cfg.TruncateGap {
			kept = kept[:len(kept)-1]
			continue
		}
		break
	}
	return &Envelope{points: kept, cfg: cfg}, nil
}

// Points returns the curve (copies), in rank order.
func (e *Envelope) Points() []Point { return append([]Point(nil), e.points...) }

// Len returns the number of points on the curve. The paper reports a median
// of 7.6 k points per day at full scale.
func (e *Envelope) Len() int { return len(e.points) }

// Start returns the first (lowest-rank) point's time.
func (e *Envelope) Start() time.Time { return e.points[0].Time }

// End returns the last (highest-rank) point's time — the estimated end of
// the day's Drop.
func (e *Envelope) End() time.Time { return e.points[len(e.points)-1].Time }

// EarliestAt infers the earliest possible re-registration time for a rank.
// Ranks on the curve return the observed time (MethodExact); ranks between
// two curve points are linearly interpolated and rounded to the nearest
// second, consistent with the RDAP timestamp precision; ranks outside the
// curve's range are clamped to its first or last time.
func (e *Envelope) EarliestAt(rank int) (time.Time, Method) {
	pts := e.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Rank >= rank })
	if i < len(pts) && pts[i].Rank == rank {
		return pts[i].Time, MethodExact
	}
	if i == 0 {
		return pts[0].Time, MethodClampedLow
	}
	if i == len(pts) {
		return pts[len(pts)-1].Time, MethodClampedHigh
	}
	lo, hi := pts[i-1], pts[i]
	span := hi.Time.Sub(lo.Time).Seconds()
	frac := float64(rank-lo.Rank) / float64(hi.Rank-lo.Rank)
	off := time.Duration(math.Round(span*frac)) * time.Second
	return lo.Time.Add(off), MethodInterpolated
}

// GapStats summarises the spacing of consecutive envelope points. The paper
// reports 99 % of gaps at 3 s or less, with a maximum of 38 s.
type GapStats struct {
	Points int
	MaxGap time.Duration
	P99Gap time.Duration
	P50Gap time.Duration
}

// Gaps computes the spacing statistics of the curve.
func (e *Envelope) Gaps() GapStats {
	st := GapStats{Points: len(e.points)}
	if len(e.points) < 2 {
		return st
	}
	gaps := make([]time.Duration, 0, len(e.points)-1)
	for i := 1; i < len(e.points); i++ {
		gaps = append(gaps, e.points[i].Time.Sub(e.points[i-1].Time))
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	st.MaxGap = gaps[len(gaps)-1]
	st.P99Gap = gaps[(len(gaps)-1)*99/100]
	st.P50Gap = gaps[(len(gaps)-1)/2]
	return st
}

// EnvelopeRegistrars returns, for each curve point, the IANA ID of the
// registrar that made the re-registration; Figure 7's sanity check that
// nearly all curve points come from drop-catch services uses this.
func EnvelopeRegistrars(ranked []Ranked, env *Envelope) map[int]int {
	byRank := make(map[int]*model.Observation, len(ranked))
	for _, r := range ranked {
		byRank[r.Rank] = r.Obs
	}
	counts := make(map[int]int)
	for _, p := range env.points {
		if o := byRank[p.Rank]; o != nil && o.Rereg != nil {
			counts[o.Rereg.RegistrarID]++
		}
	}
	return counts
}
