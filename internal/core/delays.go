package core

import (
	"sort"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// DelayResult is the paper's central measurement for one re-registered
// domain: the difference between its observed re-registration time and the
// inferred earliest possible instant.
type DelayResult struct {
	Obs      *model.Observation
	Rank     int
	Earliest time.Time
	Method   Method
	// Delay is observed − earliest. The envelope guarantees it is ≥ 0 for
	// same-day re-registrations on the curve; interpolation can produce
	// small negative values, which are clamped to zero like any measurement
	// of "earlier than possible" must be.
	Delay time.Duration
}

// DayAnalysis bundles everything derived from one deletion day.
type DayAnalysis struct {
	Day      simtime.Day
	Ranked   []Ranked
	Envelope *Envelope
	// Delays holds one entry per re-registered domain (any delay horizon);
	// domains never re-registered do not appear.
	Delays []DelayResult
	// Total is the number of domains deleted that day (list size).
	Total int
	// MethodCounts tallies how each earliest time was derived.
	MethodCounts map[Method]int
}

// AnalyzeDay runs the full §4.1–§4.2 pipeline for one deletion day's
// observations: rank by the inferred deletion order, build the minimum
// envelope, and compute a delay for every re-registered domain.
func AnalyzeDay(day simtime.Day, obs []*model.Observation, cfg EnvelopeConfig) (*DayAnalysis, error) {
	ranked := Rank(obs, OrderLastUpdate)
	env, err := BuildEnvelope(ranked, cfg)
	if err != nil {
		return nil, err
	}
	da := &DayAnalysis{
		Day:          day,
		Ranked:       ranked,
		Envelope:     env,
		Total:        len(obs),
		MethodCounts: make(map[Method]int),
	}
	for _, r := range ranked {
		if r.Obs.Rereg == nil {
			continue
		}
		earliest, method := env.EarliestAt(r.Rank)
		delay := r.Obs.Rereg.Time.Sub(earliest)
		if delay < 0 {
			delay = 0
		}
		da.MethodCounts[method]++
		da.Delays = append(da.Delays, DelayResult{
			Obs:      r.Obs,
			Rank:     r.Rank,
			Earliest: earliest,
			Method:   method,
			Delay:    delay,
		})
	}
	return da, nil
}

// AnalyzeAll runs AnalyzeDay for every deletion day in the dataset. Days
// whose envelope cannot be built (no same-day re-registrations) are skipped;
// the number skipped is returned.
func AnalyzeAll(obs []*model.Observation, cfg EnvelopeConfig) ([]*DayAnalysis, int) {
	var out []*DayAnalysis
	skipped := 0
	for _, g := range GroupByDay(obs) {
		da, err := AnalyzeDay(g.Day, g.Obs, cfg)
		if err != nil {
			skipped++
			continue
		}
		out = append(out, da)
	}
	return out, skipped
}

// AllDelays flattens the per-day results into a single slice.
func AllDelays(days []*DayAnalysis) []DelayResult {
	var n int
	for _, d := range days {
		n += len(d.Delays)
	}
	out := make([]DelayResult, 0, n)
	for _, d := range days {
		out = append(out, d.Delays...)
	}
	return out
}

// TotalDeleted sums the deleted-domain counts over all analysed days.
func TotalDeleted(days []*DayAnalysis) int {
	n := 0
	for _, d := range days {
		n += d.Total
	}
	return n
}

// DelayCDF evaluates the fraction of deleted domains re-registered with a
// delay ≤ each threshold. The denominator is the number of *deleted*
// domains (not re-registered ones): the paper's Figure 5 reports, e.g.,
// 9.5 % of all deleted domains at 0 s.
func DelayCDF(days []*DayAnalysis, horizon time.Duration, thresholds []time.Duration) []float64 {
	total := TotalDeleted(days)
	if total == 0 {
		return make([]float64, len(thresholds))
	}
	delays := make([]time.Duration, 0)
	for _, d := range AllDelays(days) {
		if d.Delay <= horizon {
			delays = append(delays, d.Delay)
		}
	}
	sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
	out := make([]float64, len(thresholds))
	for i, th := range thresholds {
		n := sort.Search(len(delays), func(k int) bool { return delays[k] > th })
		out[i] = float64(n) / float64(total)
	}
	return out
}

// MethodShares aggregates the earliest-time derivation mix over days,
// returning fractions that sum to 1 over all re-registered domains.
func MethodShares(days []*DayAnalysis) map[Method]float64 {
	counts := make(map[Method]int)
	total := 0
	for _, d := range days {
		for m, c := range d.MethodCounts {
			counts[m] += c
			total += c
		}
	}
	out := make(map[Method]float64, len(counts))
	if total == 0 {
		return out
	}
	for m, c := range counts {
		out[m] = float64(c) / float64(total)
	}
	return out
}
