package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dropzero/internal/model"
)

func delayList(seconds ...int) []DelayResult {
	out := make([]DelayResult, len(seconds))
	for i, s := range seconds {
		out[i] = DelayResult{
			Obs:   &model.Observation{Name: itoa(i) + ".com"},
			Delay: time.Duration(s) * time.Second,
		}
	}
	return out
}

func TestBuildIntervalsMinCount(t *testing.T) {
	delays := delayList(0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	ivs := BuildIntervals(delays, time.Hour, 4)
	if len(ivs) != 3 {
		t.Fatalf("intervals = %d, want 3", len(ivs))
	}
	for i, iv := range ivs {
		if iv.Count() < 4 {
			t.Fatalf("interval %d count = %d", i, iv.Count())
		}
	}
}

func TestBuildIntervalsNeverSplitsTies(t *testing.T) {
	// Ten domains at delay 0 with minCount 3: all ten must share one
	// interval because second-precision ties cannot be subdivided.
	delays := delayList(0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 5, 5)
	ivs := BuildIntervals(delays, time.Hour, 3)
	if len(ivs) != 2 {
		t.Fatalf("intervals = %d, want 2", len(ivs))
	}
	if ivs[0].Count() != 10 || ivs[0].Lo != 0 || ivs[0].Hi != 0 {
		t.Fatalf("tie interval: %+v", ivs[0])
	}
}

func TestBuildIntervalsMergesShortTail(t *testing.T) {
	delays := delayList(0, 0, 0, 0, 10, 20)
	ivs := BuildIntervals(delays, time.Hour, 4)
	if len(ivs) != 1 {
		t.Fatalf("intervals = %d, want 1 (tail merged)", len(ivs))
	}
	if ivs[0].Count() != 6 || ivs[0].Hi != 20*time.Second {
		t.Fatalf("merged interval: %+v", ivs[0])
	}
}

func TestBuildIntervalsHorizon(t *testing.T) {
	delays := delayList(0, 1, 2, 100000)
	ivs := BuildIntervals(delays, time.Hour, 2)
	total := 0
	for _, iv := range ivs {
		total += iv.Count()
	}
	if total != 3 {
		t.Fatalf("in-horizon total = %d, want 3", total)
	}
}

func TestBuildIntervalsEmpty(t *testing.T) {
	if ivs := BuildIntervals(nil, time.Hour, 5); len(ivs) != 0 {
		t.Fatalf("empty intervals = %v", ivs)
	}
}

func TestBuildIntervalsSingleUndersized(t *testing.T) {
	delays := delayList(1, 2)
	ivs := BuildIntervals(delays, time.Hour, 100)
	if len(ivs) != 1 || ivs[0].Count() != 2 {
		t.Fatalf("undersized single interval: %+v", ivs)
	}
}

func TestMarketShare(t *testing.T) {
	delays := delayList(0, 0, 0, 0)
	delays[0].Obs.Rereg = &model.Rereg{RegistrarID: 1}
	delays[1].Obs.Rereg = &model.Rereg{RegistrarID: 1}
	delays[2].Obs.Rereg = &model.Rereg{RegistrarID: 2}
	delays[3].Obs.Rereg = &model.Rereg{RegistrarID: 3}
	ivs := BuildIntervals(delays, time.Hour, 4)
	shares := MarketShare(ivs, func(d DelayResult) string {
		switch d.Obs.Rereg.RegistrarID {
		case 1:
			return "A"
		case 2:
			return "B"
		default:
			return "" // maps to "other"
		}
	})
	if len(shares) != 1 {
		t.Fatalf("share rows = %d", len(shares))
	}
	if got := ShareOf(shares[0], "A"); got != 0.5 {
		t.Fatalf("A share = %f", got)
	}
	if got := ShareOf(shares[0], "B"); got != 0.25 {
		t.Fatalf("B share = %f", got)
	}
	if got := ShareOf(shares[0], "other"); got != 0.25 {
		t.Fatalf("other share = %f", got)
	}
	if got := ShareOf(shares[0], "missing"); got != 0 {
		t.Fatalf("missing share = %f", got)
	}
	// Sorted descending.
	if shares[0][0].Key != "A" {
		t.Fatalf("shares not sorted: %+v", shares[0])
	}
}

// Properties: intervals partition the in-horizon delays; bounds are
// consistent; every interval except possibly a lone first one meets
// minCount; shares sum to 1.
func TestIntervalProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		delays := make([]DelayResult, n)
		for i := range delays {
			delays[i] = DelayResult{
				Obs:   &model.Observation{Rereg: &model.Rereg{RegistrarID: rng.Intn(5)}},
				Delay: time.Duration(rng.Intn(100)) * time.Second,
			}
		}
		minCount := 1 + rng.Intn(30)
		ivs := BuildIntervals(delays, time.Hour, minCount)
		total := 0
		for i, iv := range ivs {
			total += iv.Count()
			if iv.Lo > iv.Hi {
				return false
			}
			if i > 0 && iv.Lo < ivs[i-1].Hi {
				return false
			}
			for _, d := range iv.Items {
				if d.Delay < iv.Lo || d.Delay > iv.Hi {
					return false
				}
			}
			if len(ivs) > 1 && iv.Count() < minCount {
				return false
			}
		}
		if total != n {
			return false
		}
		for _, row := range MarketShare(ivs, func(d DelayResult) string { return itoa(d.Obs.Rereg.RegistrarID) }) {
			sum := 0.0
			for _, s := range row {
				sum += s.Value
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
