package core

import (
	"time"
)

// DropCatchMaxDelay is the paper's threshold: a re-registration is a
// drop-catch when its delay from the earliest possible instant is at most
// three seconds (§4.3).
const DropCatchMaxDelay = 3 * time.Second

// Classifier labels re-registrations as drop-catch or delayed using the
// delay metric, and evaluates the two prior-work heuristics against it.
type Classifier struct {
	// MaxDelay is the drop-catch threshold; zero means DropCatchMaxDelay.
	MaxDelay time.Duration
	// WindowStartHour/WindowEndHour bound the fixed Drop-window heuristic
	// (19:00:00–19:59:59 UTC in the paper). End is exclusive.
	WindowStartHour int
	WindowEndHour   int
}

// NewClassifier returns a Classifier with the paper's parameters.
func NewClassifier() *Classifier {
	return &Classifier{MaxDelay: DropCatchMaxDelay, WindowStartHour: 19, WindowEndHour: 20}
}

func (c *Classifier) maxDelay() time.Duration {
	if c.MaxDelay == 0 {
		return DropCatchMaxDelay
	}
	return c.MaxDelay
}

// IsDropCatch applies the delay metric.
func (c *Classifier) IsDropCatch(d DelayResult) bool { return d.Delay <= c.maxDelay() }

// SameDayHeuristic is prior work's approximation: every re-registration on
// the deletion day counts as drop-catch.
func (c *Classifier) SameDayHeuristic(d DelayResult) bool { return d.Obs.SameDayRereg() }

// DropWindowHeuristic labels re-registrations made during the fixed Drop
// window on the deletion day as drop-catch.
func (c *Classifier) DropWindowHeuristic(d DelayResult) bool {
	if !d.Obs.SameDayRereg() {
		return false
	}
	h := d.Obs.Rereg.Time.UTC().Hour()
	return h >= c.WindowStartHour && h < c.WindowEndHour
}

// HeuristicEval quantifies a heuristic against the delay metric over the
// same-day re-registration population, reproducing the §4.3 numbers:
//
//   - for the same-day heuristic, FalsePositiveShare ≈ 13.9 % (same-day
//     re-registrations that are not drop-catch) and FalseNegativeShare = 0;
//   - for the Drop-window heuristic, FalseNegativeShare ≈ 9.5 % (drop-catch
//     re-registrations after the window, because the Drop's duration varies)
//     and FalsePositiveShare ≈ 7.4 % (in-window re-registrations with delays
//     above 3 s).
//
// Shares are fractions of all deletion-day re-registrations.
type HeuristicEval struct {
	Name               string
	SameDayTotal       int
	TruePositives      int
	FalsePositives     int
	FalseNegatives     int
	FalsePositiveShare float64
	FalseNegativeShare float64
}

// Evaluate scores a heuristic predicate against the delay metric.
func (c *Classifier) Evaluate(name string, delays []DelayResult, heuristic func(DelayResult) bool) HeuristicEval {
	ev := HeuristicEval{Name: name}
	for _, d := range delays {
		if !d.Obs.SameDayRereg() {
			continue
		}
		ev.SameDayTotal++
		truth := c.IsDropCatch(d)
		pred := heuristic(d)
		switch {
		case pred && truth:
			ev.TruePositives++
		case pred && !truth:
			ev.FalsePositives++
		case !pred && truth:
			ev.FalseNegatives++
		}
	}
	if ev.SameDayTotal > 0 {
		ev.FalsePositiveShare = float64(ev.FalsePositives) / float64(ev.SameDayTotal)
		ev.FalseNegativeShare = float64(ev.FalseNegatives) / float64(ev.SameDayTotal)
	}
	return ev
}

// DropCatchShare returns the fraction of deletion-day re-registrations with
// delay at most the classifier threshold — the paper's 86.1 %.
func (c *Classifier) DropCatchShare(delays []DelayResult) float64 {
	total, dc := 0, 0
	for _, d := range delays {
		if !d.Obs.SameDayRereg() {
			continue
		}
		total++
		if c.IsDropCatch(d) {
			dc++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dc) / float64(total)
}
