package core

import (
	"math/rand"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

func TestRankByLastUpdate(t *testing.T) {
	// Shuffle insertion order; ranks must follow (Updated, ID).
	obs := []*model.Observation{obsAt(3, 0), obsAt(0, 0), obsAt(2, 0), obsAt(1, 0)}
	ranked := Rank(obs, OrderLastUpdate)
	for i, r := range ranked {
		if int(r.Obs.Prior.ID) != i+1 {
			t.Fatalf("rank %d holds prior ID %d", i, r.Obs.Prior.ID)
		}
		if r.Rank != i {
			t.Fatalf("rank field %d at position %d", r.Rank, i)
		}
	}
}

func TestRankTieBrokenByID(t *testing.T) {
	// Equal update times (one registrar batch); the domain ID must induce
	// the total order, as the paper chose.
	shared := testDay.AddDays(-35).At(6, 30, 0)
	mk := func(id uint64) *model.Observation {
		return &model.Observation{
			Name:      "t" + itoa(int(id)) + ".com",
			DeleteDay: testDay,
			Prior:     model.PriorRegistration{ID: id, Updated: shared, Created: shared.AddDate(-1, 0, 0)},
		}
	}
	obs := []*model.Observation{mk(30), mk(10), mk(20)}
	ranked := Rank(obs, OrderLastUpdate)
	if ranked[0].Obs.Prior.ID != 10 || ranked[1].Obs.Prior.ID != 20 || ranked[2].Obs.Prior.ID != 30 {
		t.Fatalf("tie break wrong: %v %v %v",
			ranked[0].Obs.Prior.ID, ranked[1].Obs.Prior.ID, ranked[2].Obs.Prior.ID)
	}
}

func TestRankDoesNotMutateInput(t *testing.T) {
	obs := []*model.Observation{obsAt(2, 0), obsAt(0, 0), obsAt(1, 0)}
	first := obs[0]
	Rank(obs, OrderLastUpdate)
	if obs[0] != first {
		t.Fatal("Rank reordered the input slice")
	}
}

func TestOrderingLessVariants(t *testing.T) {
	a := obsAt(0, 0)
	b := obsAt(1, 0)
	a.Name, b.Name = "aaa.com", "zzz.com"
	a.Prior.RegistrarID, b.Prior.RegistrarID = 2, 1
	if !OrderAlphabetical.less(a, b) {
		t.Fatal("alphabetical wrong")
	}
	if !OrderDomainID.less(a, b) {
		t.Fatal("domain id wrong")
	}
	if OrderRegistrarID.less(a, b) {
		t.Fatal("registrar id wrong")
	}
	if !OrderCreation.less(a, b) {
		t.Fatal("creation wrong")
	}
	if !OrderExpiry.less(a, b) {
		t.Fatal("expiry wrong")
	}
}

func TestOrderScorePerfectOrder(t *testing.T) {
	var obs []*model.Observation
	for i := 0; i < 200; i++ {
		obs = append(obs, obsAt(i, i/4))
	}
	score := OrderScore(Rank(obs, OrderLastUpdate))
	if score < 0.95 {
		t.Fatalf("perfect order score = %.3f, want ≈1", score)
	}
}

func TestOrderScoreShuffledOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var obs []*model.Observation
	for i := 0; i < 400; i++ {
		obs = append(obs, obsAt(i, i/4))
	}
	// Alphabetical order over random-ish names is unrelated to deletion
	// time: build names that shuffle the alphabetical ranking.
	for _, o := range obs {
		o.Name = itoa(rng.Intn(1 << 30))
	}
	score := OrderScore(Rank(obs, OrderAlphabetical))
	if score > 0.3 || score < -0.3 {
		t.Fatalf("shuffled order score = %.3f, want ≈0", score)
	}
}

func TestOrderScoreTooFewPoints(t *testing.T) {
	if s := OrderScore(Rank([]*model.Observation{obsAt(0, 0)}, OrderLastUpdate)); s != 0 {
		t.Fatalf("score with one point = %f", s)
	}
	if s := OrderScore(nil); s != 0 {
		t.Fatalf("score with no points = %f", s)
	}
}

func TestSearchOrderingsIdentifiesTrueOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var obs []*model.Observation
	// Build a population where update time (and thus deletion order) is
	// decorrelated from IDs, names, creation and expiration.
	n := 600
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		// Deletion position = perm[i]; re-registered right at its slot.
		updated := testDay.AddDays(-35).At(6, 0, 0).Add(time.Duration(perm[i]) * time.Second)
		obs = append(obs, &model.Observation{
			Name:      itoa(rng.Intn(1<<30)) + ".com",
			DeleteDay: testDay,
			Prior: model.PriorRegistration{
				ID:      uint64(i + 1),
				Updated: updated,
				Created: testDay.AddDays(-800-rng.Intn(2000)).At(rng.Intn(24), 0, 0),
				Expiry:  testDay.AddDays(-40-rng.Intn(20)).At(rng.Intn(24), 0, 0),
			},
			Rereg: &model.Rereg{Time: testDay.At(19, 0, 0).Add(time.Duration(perm[i]/4) * time.Second)},
		})
	}
	results := SearchOrderings(obs)
	if best := results[0].Ordering; best != OrderLastUpdate && best != OrderLastUpdateCreated {
		t.Fatalf("best ordering = %v (%.3f), want a last-update variant", best, results[0].Score)
	}
	if results[0].Score < 0.9 {
		t.Fatalf("last-update score = %.3f, want ≈1", results[0].Score)
	}
	for _, r := range results[1:] {
		// The two last-update variants are near-identical orders; every
		// other candidate must score clearly lower.
		if r.Ordering == OrderLastUpdate || r.Ordering == OrderLastUpdateCreated {
			continue
		}
		if r.Score > 0.5 {
			t.Fatalf("rejected ordering %v scored %.3f", r.Ordering, r.Score)
		}
	}
}

func TestLastUpdateCreatedTieBreak(t *testing.T) {
	shared := testDay.AddDays(-35).At(6, 30, 0)
	mk := func(id uint64, createdOffset int) *model.Observation {
		return &model.Observation{
			Name:      "c" + itoa(int(id)) + ".com",
			DeleteDay: testDay,
			Prior: model.PriorRegistration{
				ID:      id,
				Updated: shared,
				Created: shared.AddDate(-1, 0, createdOffset),
			},
		}
	}
	// IDs and creation order disagree: the created variant must follow
	// creation time, the default must follow IDs.
	obs := []*model.Observation{mk(1, 5), mk(2, 0)}
	byCreated := Rank(obs, OrderLastUpdateCreated)
	if byCreated[0].Obs.Prior.ID != 2 {
		t.Fatalf("created tie-break: first = ID %d", byCreated[0].Obs.Prior.ID)
	}
	byID := Rank(obs, OrderLastUpdate)
	if byID[0].Obs.Prior.ID != 1 {
		t.Fatalf("ID tie-break: first = ID %d", byID[0].Obs.Prior.ID)
	}
}

func TestOrderingString(t *testing.T) {
	for _, o := range Orderings() {
		if o.String() == "" {
			t.Fatalf("ordering %d has empty name", o)
		}
	}
	if Ordering(99).String() != "Ordering(99)" {
		t.Fatal("unknown ordering string")
	}
}

func TestGroupByDay(t *testing.T) {
	day2 := testDay.Next()
	a, b, c := obsAt(0, 0), obsAt(1, 0), obsAt(2, 0)
	c.DeleteDay = day2
	groups := GroupByDay([]*model.Observation{c, a, b})
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if groups[0].Day != testDay || len(groups[0].Obs) != 2 {
		t.Fatalf("first group: %+v", groups[0].Day)
	}
	if groups[1].Day != day2 || len(groups[1].Obs) != 1 {
		t.Fatalf("second group: %+v", groups[1].Day)
	}
	if !groups[0].Day.Before(groups[1].Day) {
		t.Fatal("groups not chronological")
	}
}

func TestGroupByDayEmpty(t *testing.T) {
	if got := GroupByDay(nil); len(got) != 0 {
		t.Fatalf("GroupByDay(nil) = %v", got)
	}
}

var _ = simtime.Day{} // keep import when test bodies change
