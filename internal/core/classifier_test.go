package core

import (
	"testing"
	"time"

	"dropzero/internal/model"
)

// mkDelay builds a DelayResult directly for classifier tests.
func mkDelay(sameDay bool, reregHour int, delay time.Duration) DelayResult {
	day := testDay
	var rt time.Time
	if sameDay {
		rt = day.At(reregHour, 5, 0)
	} else {
		rt = day.Next().At(reregHour, 5, 0)
	}
	return DelayResult{
		Obs: &model.Observation{
			DeleteDay: day,
			Rereg:     &model.Rereg{Time: rt},
		},
		Delay: delay,
	}
}

func TestClassifierIsDropCatch(t *testing.T) {
	c := NewClassifier()
	if !c.IsDropCatch(mkDelay(true, 19, 0)) {
		t.Fatal("0 s not drop-catch")
	}
	if !c.IsDropCatch(mkDelay(true, 19, 3*time.Second)) {
		t.Fatal("3 s not drop-catch")
	}
	if c.IsDropCatch(mkDelay(true, 19, 4*time.Second)) {
		t.Fatal("4 s classified as drop-catch")
	}
}

func TestClassifierZeroValueUsesDefault(t *testing.T) {
	var c Classifier
	if !c.IsDropCatch(mkDelay(true, 19, 3*time.Second)) {
		t.Fatal("zero-value classifier lost the default threshold")
	}
}

func TestSameDayHeuristic(t *testing.T) {
	c := NewClassifier()
	if !c.SameDayHeuristic(mkDelay(true, 23, time.Hour)) {
		t.Fatal("same-day rereg not flagged")
	}
	if c.SameDayHeuristic(mkDelay(false, 1, time.Hour)) {
		t.Fatal("next-day rereg flagged")
	}
}

func TestDropWindowHeuristic(t *testing.T) {
	c := NewClassifier()
	if !c.DropWindowHeuristic(mkDelay(true, 19, time.Hour)) {
		t.Fatal("19 h rereg not in window")
	}
	if c.DropWindowHeuristic(mkDelay(true, 20, 0)) {
		t.Fatal("20 h rereg in window")
	}
	if c.DropWindowHeuristic(mkDelay(false, 19, 0)) {
		t.Fatal("next-day 19 h rereg in window")
	}
}

func TestEvaluateConfusion(t *testing.T) {
	c := NewClassifier()
	delays := []DelayResult{
		mkDelay(true, 19, 0),              // TP under window heuristic
		mkDelay(true, 19, 10*time.Second), // FP under window heuristic
		mkDelay(true, 20, 2*time.Second),  // FN under window heuristic (after 20:00, real drop-catch)
		mkDelay(true, 22, time.Hour),      // TN
		mkDelay(false, 3, 8*time.Hour),    // not same-day: excluded
	}
	ev := c.Evaluate("drop-window", delays, c.DropWindowHeuristic)
	if ev.SameDayTotal != 4 {
		t.Fatalf("total = %d", ev.SameDayTotal)
	}
	if ev.TruePositives != 1 || ev.FalsePositives != 1 || ev.FalseNegatives != 1 {
		t.Fatalf("confusion = %+v", ev)
	}
	if ev.FalsePositiveShare != 0.25 || ev.FalseNegativeShare != 0.25 {
		t.Fatalf("shares = %+v", ev)
	}
}

func TestEvaluateSameDayHeuristicNoFalseNegatives(t *testing.T) {
	c := NewClassifier()
	delays := []DelayResult{
		mkDelay(true, 19, 0),
		mkDelay(true, 21, time.Hour),
		mkDelay(false, 3, 8*time.Hour),
	}
	ev := c.Evaluate("same-day", delays, c.SameDayHeuristic)
	if ev.FalseNegatives != 0 {
		t.Fatalf("same-day heuristic produced FNs: %+v", ev)
	}
	if ev.FalsePositives != 1 {
		t.Fatalf("FP = %d, want 1 (the delayed same-day rereg)", ev.FalsePositives)
	}
}

func TestDropCatchShare(t *testing.T) {
	c := NewClassifier()
	delays := []DelayResult{
		mkDelay(true, 19, 0),
		mkDelay(true, 19, 2*time.Second),
		mkDelay(true, 21, time.Hour),
		mkDelay(false, 3, 8*time.Hour), // excluded: not same-day
	}
	if got := c.DropCatchShare(delays); got != 2.0/3.0 {
		t.Fatalf("share = %f", got)
	}
	if got := c.DropCatchShare(nil); got != 0 {
		t.Fatalf("empty share = %f", got)
	}
}
