// Package core implements the paper's analytical contribution: inferring the
// order in which .com domains are deleted during the Drop (§4.1), modelling
// the earliest possible re-registration instant of every domain with a
// per-day minimum-envelope curve (§4.2), computing re-registration delays
// and classifying drop-catch behaviour (§4.3), and slicing the results into
// adaptive delay intervals for market-share analysis (§4.4).
//
// The package is deliberately independent of the simulator: it consumes only
// model.Observation values — the information the measurement pipeline can
// collect from public pending-delete lists and RDAP/WHOIS lookups.
package core

import (
	"fmt"
	"math"
	"sort"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// Ordering is a candidate deletion-order key. The paper tests several and
// finds that only last-updated time (with domain ID as tie breaker) produces
// the expected diagonal.
type Ordering int

// Candidate orderings from §4.1.
const (
	// OrderLastUpdate sorts by the prior registration's last-updated
	// timestamp, ties broken by domain ID — the inferred true order.
	OrderLastUpdate Ordering = iota
	// OrderListOrder keeps the pending-delete list order (alphabetical by
	// name, per the dropscope publisher) — the paper's Figure 3 (top).
	OrderListOrder
	// OrderDomainID sorts by registry object ID.
	OrderDomainID
	// OrderRegistrarID sorts by sponsoring registrar, ties by domain ID.
	OrderRegistrarID
	// OrderCreation sorts by the prior registration's creation time.
	OrderCreation
	// OrderExpiry sorts by the prior registration's expiration time.
	OrderExpiry
	// OrderAlphabetical sorts by domain name.
	OrderAlphabetical
	// OrderLastUpdateCreated is the §4.1 alternative tie-breaker: last
	// updated, ties broken by creation timestamp (then ID, since creation
	// timestamps alone do not induce a total order). The paper notes it
	// "appears to work well" and opts for domain IDs.
	OrderLastUpdateCreated
	numOrderings
)

// Orderings lists every candidate, in the order the paper discusses them.
func Orderings() []Ordering {
	out := make([]Ordering, numOrderings)
	for i := range out {
		out[i] = Ordering(i)
	}
	return out
}

// String names the ordering.
func (o Ordering) String() string {
	switch o {
	case OrderLastUpdate:
		return "last-update+id"
	case OrderListOrder:
		return "pending-list order"
	case OrderDomainID:
		return "domain id"
	case OrderRegistrarID:
		return "registrar id"
	case OrderCreation:
		return "creation date"
	case OrderExpiry:
		return "expiration date"
	case OrderAlphabetical:
		return "alphabetical"
	case OrderLastUpdateCreated:
		return "last-update+created"
	default:
		return fmt.Sprintf("Ordering(%d)", int(o))
	}
}

func (o Ordering) less(a, b *model.Observation) bool {
	switch o {
	case OrderLastUpdate:
		if !a.Prior.Updated.Equal(b.Prior.Updated) {
			return a.Prior.Updated.Before(b.Prior.Updated)
		}
		return a.Prior.ID < b.Prior.ID
	case OrderLastUpdateCreated:
		if !a.Prior.Updated.Equal(b.Prior.Updated) {
			return a.Prior.Updated.Before(b.Prior.Updated)
		}
		if !a.Prior.Created.Equal(b.Prior.Created) {
			return a.Prior.Created.Before(b.Prior.Created)
		}
		return a.Prior.ID < b.Prior.ID
	case OrderListOrder, OrderAlphabetical:
		return a.Name < b.Name
	case OrderDomainID:
		return a.Prior.ID < b.Prior.ID
	case OrderRegistrarID:
		if a.Prior.RegistrarID != b.Prior.RegistrarID {
			return a.Prior.RegistrarID < b.Prior.RegistrarID
		}
		return a.Prior.ID < b.Prior.ID
	case OrderCreation:
		if !a.Prior.Created.Equal(b.Prior.Created) {
			return a.Prior.Created.Before(b.Prior.Created)
		}
		return a.Prior.ID < b.Prior.ID
	case OrderExpiry:
		if !a.Prior.Expiry.Equal(b.Prior.Expiry) {
			return a.Prior.Expiry.Before(b.Prior.Expiry)
		}
		return a.Prior.ID < b.Prior.ID
	default:
		return a.Prior.ID < b.Prior.ID
	}
}

// Ranked pairs an observation with its 0-based rank under some ordering.
type Ranked struct {
	Obs  *model.Observation
	Rank int
}

// Rank sorts one deletion day's observations under ord and assigns ranks.
// The input slice is not modified.
func Rank(obs []*model.Observation, ord Ordering) []Ranked {
	sorted := append([]*model.Observation(nil), obs...)
	sort.SliceStable(sorted, func(i, j int) bool { return ord.less(sorted[i], sorted[j]) })
	out := make([]Ranked, len(sorted))
	for i, o := range sorted {
		out[i] = Ranked{Obs: o, Rank: i}
	}
	return out
}

// OrderScore measures how well an ordering explains the same-day
// re-registration times, as the Spearman rank correlation between deletion
// rank and re-registration time over all same-day re-registrations. The true
// deletion order produces a strong positive correlation (most domains are
// caught in deletion order); unrelated orderings score near zero.
func OrderScore(ranked []Ranked) float64 {
	type pt struct {
		rank int
		t    int64
	}
	var pts []pt
	for _, r := range ranked {
		if r.Obs.SameDayRereg() {
			pts = append(pts, pt{r.Rank, r.Obs.Rereg.Time.Unix()})
		}
	}
	if len(pts) < 2 {
		return 0
	}
	// Rank the re-registration times (average ranks for ties).
	byTime := make([]int, len(pts))
	for i := range byTime {
		byTime[i] = i
	}
	sort.Slice(byTime, func(i, j int) bool { return pts[byTime[i]].t < pts[byTime[j]].t })
	timeRank := make([]float64, len(pts))
	for i := 0; i < len(byTime); {
		j := i
		for j < len(byTime) && pts[byTime[j]].t == pts[byTime[i]].t {
			j++
		}
		avg := float64(i+j-1) / 2
		for k := i; k < j; k++ {
			timeRank[byTime[k]] = avg
		}
		i = j
	}
	// The deletion ranks of the same-day subset are distinct; rank them by
	// position after sorting.
	byRank := make([]int, len(pts))
	for i := range byRank {
		byRank[i] = i
	}
	sort.Slice(byRank, func(i, j int) bool { return pts[byRank[i]].rank < pts[byRank[j]].rank })
	rankRank := make([]float64, len(pts))
	for i, idx := range byRank {
		rankRank[idx] = float64(i)
	}
	return pearson(rankRank, timeRank)
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// OrderSearchResult scores one candidate ordering.
type OrderSearchResult struct {
	Ordering Ordering
	Score    float64
}

// SearchOrderings ranks every candidate ordering by OrderScore, best first.
// This is the §4.1 analysis that rules out domain ID, registrar ID, creation
// date, expiration date, list order and alphabetical order.
func SearchOrderings(obs []*model.Observation) []OrderSearchResult {
	results := make([]OrderSearchResult, 0, numOrderings)
	for _, ord := range Orderings() {
		results = append(results, OrderSearchResult{
			Ordering: ord,
			Score:    OrderScore(Rank(obs, ord)),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score > results[j].Score })
	return results
}

// GroupByDay splits a dataset into per-deletion-day groups, each sorted set
// ready for Rank. Days are returned in chronological order.
func GroupByDay(obs []*model.Observation) []DayGroup {
	byDay := make(map[int64][]*model.Observation)
	for _, o := range obs {
		key := o.DeleteDay.Start().Unix()
		byDay[key] = append(byDay[key], o)
	}
	keys := make([]int64, 0, len(byDay))
	for k := range byDay {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]DayGroup, 0, len(keys))
	for _, k := range keys {
		group := byDay[k]
		out = append(out, DayGroup{Day: group[0].DeleteDay, Obs: group})
	}
	return out
}

// DayGroup is one deletion day's observations.
type DayGroup struct {
	Day simtime.Day
	Obs []*model.Observation
}
