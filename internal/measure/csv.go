package measure

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"dropzero/internal/dropscope"
	"dropzero/internal/model"
)

// csvHeader is the dataset's on-disk column layout.
var csvHeader = []string{
	"name", "tld", "delete_day",
	"prior_id", "prior_registrar", "prior_created", "prior_updated", "prior_expiry",
	"rereg_time", "rereg_registrar", "malicious",
}

const csvTime = time.RFC3339

// WriteCSV persists a dataset.
func WriteCSV(w io.Writer, obs []*model.Observation) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("measure: write CSV header: %w", err)
	}
	for _, o := range obs {
		rec := []string{
			o.Name,
			string(o.TLD),
			o.DeleteDay.String(),
			strconv.FormatUint(o.Prior.ID, 10),
			strconv.Itoa(o.Prior.RegistrarID),
			o.Prior.Created.UTC().Format(csvTime),
			o.Prior.Updated.UTC().Format(csvTime),
			o.Prior.Expiry.UTC().Format(csvTime),
			"", "", "false",
		}
		if o.Rereg != nil {
			rec[8] = o.Rereg.Time.UTC().Format(csvTime)
			rec[9] = strconv.Itoa(o.Rereg.RegistrarID)
			rec[10] = strconv.FormatBool(o.Malicious)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("measure: write CSV row for %s: %w", o.Name, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV loads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) ([]*model.Observation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("measure: read CSV header: %w", err)
	}
	if len(header) != len(csvHeader) || header[0] != csvHeader[0] {
		return nil, fmt.Errorf("measure: unexpected CSV header %v", header)
	}
	var out []*model.Observation
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("measure: read CSV line %d: %w", line, err)
		}
		o, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("measure: CSV line %d: %w", line, err)
		}
		out = append(out, o)
	}
}

func parseRow(rec []string) (*model.Observation, error) {
	day, err := dropscope.ParseDay(rec[2])
	if err != nil {
		return nil, fmt.Errorf("bad delete_day %q: %w", rec[2], err)
	}
	id, err := strconv.ParseUint(rec[3], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad prior_id %q: %w", rec[3], err)
	}
	regID, err := strconv.Atoi(rec[4])
	if err != nil {
		return nil, fmt.Errorf("bad prior_registrar %q: %w", rec[4], err)
	}
	parseT := func(field, s string) (time.Time, error) {
		t, err := time.Parse(csvTime, s)
		if err != nil {
			return time.Time{}, fmt.Errorf("bad %s %q: %w", field, s, err)
		}
		return t.UTC(), nil
	}
	created, err := parseT("prior_created", rec[5])
	if err != nil {
		return nil, err
	}
	updated, err := parseT("prior_updated", rec[6])
	if err != nil {
		return nil, err
	}
	expiry, err := parseT("prior_expiry", rec[7])
	if err != nil {
		return nil, err
	}
	o := &model.Observation{
		Name:      rec[0],
		TLD:       model.TLD(rec[1]),
		DeleteDay: day,
		Prior: model.PriorRegistration{
			ID:          id,
			RegistrarID: regID,
			Created:     created,
			Updated:     updated,
			Expiry:      expiry,
		},
	}
	if rec[8] != "" {
		rt, err := parseT("rereg_time", rec[8])
		if err != nil {
			return nil, err
		}
		rreg, err := strconv.Atoi(rec[9])
		if err != nil {
			return nil, fmt.Errorf("bad rereg_registrar %q: %w", rec[9], err)
		}
		o.Rereg = &model.Rereg{Time: rt, RegistrarID: rreg}
		o.Malicious, err = strconv.ParseBool(rec[10])
		if err != nil {
			return nil, fmt.Errorf("bad malicious %q: %w", rec[10], err)
		}
	}
	return o, nil
}
