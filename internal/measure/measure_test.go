package measure

import (
	"bytes"
	"context"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"dropzero/internal/dropscope"
	"dropzero/internal/inproc"
	"dropzero/internal/model"
	"dropzero/internal/rdap"
	"dropzero/internal/registry"
	"dropzero/internal/simtime"
	"dropzero/internal/whois"
)

// env is a miniature registry world for pipeline tests.
type env struct {
	clock *simtime.SimClock
	store *registry.Store
	pipe  *Pipeline
	day   simtime.Day
}

func newEnv(t *testing.T, rdapCfg rdap.ServerConfig, withWhois bool) *env {
	t.Helper()
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 10}
	clock := simtime.NewSimClock(day.At(9, 0, 0))
	store := registry.NewStore(clock)
	store.AddRegistrar(model.Registrar{IANAID: 1000, Name: "Sponsor"})
	store.AddRegistrar(model.Registrar{IANAID: 2000, Name: "Catcher"})
	store.AddRegistrar(model.Registrar{IANAID: 1727, Name: "Broken"})

	rdapSrv := rdap.NewServer(store, rdapCfg)
	scopeSrv := dropscope.NewServer(store)
	rdapClient, err := rdap.NewClient("http://rdap.test", inproc.Client(rdapSrv.Handler()))
	if err != nil {
		t.Fatal(err)
	}
	scopeClient, err := dropscope.NewClient("http://scope.test", inproc.Client(scopeSrv.Handler()))
	if err != nil {
		t.Fatal(err)
	}
	pipe := &Pipeline{Lists: scopeClient, RDAP: rdapClient, TLDFilter: model.COM}
	if withWhois {
		wsrv := whois.NewServer(store)
		addr, err := wsrv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { wsrv.Close() })
		pipe.WHOIS = &whois.Client{Addr: addr.String()}
	}
	return &env{clock: clock, store: store, pipe: pipe, day: day}
}

func (e *env) seedPending(t *testing.T, name string, registrar int, deleteDay simtime.Day) *model.Domain {
	t.Helper()
	updated := deleteDay.AddDays(-35).At(6, 30, 0)
	d, err := e.store.SeedAt(name, registrar, updated.AddDate(-2, 0, 0), updated,
		updated.AddDate(0, 0, -30), model.StatusPendingDelete, deleteDay)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// purgeAndRereg deletes the name via the store's drop path and optionally
// re-registers it.
func (e *env) purgeAndRereg(t *testing.T, name string, reregBy int, at time.Time) {
	t.Helper()
	runner := registry.NewDropRunner(e.store, registry.DropConfig{
		StartHour: 19, BaseRatePerSec: 1000, RateJitter: 0, DayRateSpread: 0,
	})
	d, err := e.store.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	events, err := runner.Run(d.DeleteDay, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("nothing purged")
	}
	if reregBy != 0 {
		if _, err := e.store.CreateAt(name, reregBy, 1, at); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPipelineDetectsRereg(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{}, false)
	prior := e.seedPending(t, "target.com", 1000, e.day)
	ctx := context.Background()
	if err := e.pipe.CollectDaily(ctx, e.day); err != nil {
		t.Fatal(err)
	}
	if e.pipe.PendingCount() != 1 {
		t.Fatalf("pending = %d", e.pipe.PendingCount())
	}
	reregAt := e.day.At(19, 0, 7)
	e.purgeAndRereg(t, "target.com", 2000, reregAt)
	e.clock.Set(e.day.AddDays(60).At(12, 0, 0))
	obs, err := e.pipe.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("observations = %d", len(obs))
	}
	o := obs[0]
	if o.Prior.ID != prior.ID || o.Prior.RegistrarID != 1000 {
		t.Fatalf("prior metadata: %+v", o.Prior)
	}
	if o.Rereg == nil || o.Rereg.RegistrarID != 2000 || !o.Rereg.Time.Equal(reregAt) {
		t.Fatalf("rereg: %+v", o.Rereg)
	}
}

func TestPipelineDetectsNonRereg(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{}, false)
	e.seedPending(t, "gone.com", 1000, e.day)
	ctx := context.Background()
	if err := e.pipe.CollectDaily(ctx, e.day); err != nil {
		t.Fatal(err)
	}
	e.purgeAndRereg(t, "gone.com", 0, time.Time{})
	obs, err := e.pipe.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 || obs[0].Rereg != nil {
		t.Fatalf("observations: %+v", obs)
	}
}

func TestPipelineWHOISFallback(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{FailRegistrars: map[int]int{1727: http.StatusInternalServerError}}, true)
	e.seedPending(t, "broken.com", 1727, e.day)
	ctx := context.Background()
	if err := e.pipe.CollectDaily(ctx, e.day); err != nil {
		t.Fatal(err)
	}
	st := e.pipe.Stats()
	if st.RDAPErrors != 1 || st.WHOISFallbacks != 1 || st.FallbackFailed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	e.purgeAndRereg(t, "broken.com", 0, time.Time{})
	obs, err := e.pipe.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 1 {
		t.Fatalf("fallback domain missing from dataset: %d", len(obs))
	}
	if obs[0].Prior.RegistrarID != 1727 {
		t.Fatalf("prior: %+v", obs[0].Prior)
	}
}

func TestPipelineNoFallbackDropsDomain(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{FailRegistrars: map[int]int{1727: http.StatusInternalServerError}}, false)
	e.seedPending(t, "broken.com", 1727, e.day)
	ctx := context.Background()
	if err := e.pipe.CollectDaily(ctx, e.day); err != nil {
		t.Fatal(err)
	}
	if st := e.pipe.Stats(); st.FallbackFailed != 1 {
		t.Fatalf("stats = %+v", st)
	}
	obs, err := e.pipe.Finalize(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != 0 {
		t.Fatalf("domain without metadata kept: %d", len(obs))
	}
}

func TestPipelineTLDFilter(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{}, false)
	e.seedPending(t, "keep.com", 1000, e.day)
	e.seedPending(t, "skip.net", 1000, e.day)
	if err := e.pipe.CollectDaily(context.Background(), e.day); err != nil {
		t.Fatal(err)
	}
	if e.pipe.PendingCount() != 1 {
		t.Fatalf("pending = %d, want .com only", e.pipe.PendingCount())
	}
}

func TestPipelineLookupWindow(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{}, false)
	e.seedPending(t, "near.com", 1000, e.day.AddDays(2))
	e.seedPending(t, "far.com", 1000, e.day.AddDays(4))
	if err := e.pipe.CollectDaily(context.Background(), e.day); err != nil {
		t.Fatal(err)
	}
	// Both entries tracked, but only the near one (≤3 days out) looked up.
	if st := e.pipe.Stats(); st.ListEntries != 2 || st.Lookups != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Next day the far one enters the window.
	if err := e.pipe.CollectDaily(context.Background(), e.day.Next()); err != nil {
		t.Fatal(err)
	}
	if st := e.pipe.Stats(); st.Lookups != 2 {
		t.Fatalf("stats after day 2 = %+v", st)
	}
}

func TestPipelineIdempotentDailyCollect(t *testing.T) {
	e := newEnv(t, rdap.ServerConfig{}, false)
	e.seedPending(t, "once.com", 1000, e.day)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := e.pipe.CollectDaily(ctx, e.day); err != nil {
			t.Fatal(err)
		}
	}
	if st := e.pipe.Stats(); st.ListEntries != 1 || st.Lookups != 1 {
		t.Fatalf("repeat collection not idempotent: %+v", st)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 10}
	obs := []*model.Observation{
		{
			Name: "a.com", TLD: model.COM, DeleteDay: day,
			Prior: model.PriorRegistration{
				ID: 7, RegistrarID: 1000,
				Created: day.AddDays(-800).At(3, 2, 1),
				Updated: day.AddDays(-35).At(6, 30, 0),
				Expiry:  day.AddDays(-70).At(3, 2, 1),
			},
			Rereg:     &model.Rereg{Time: day.At(19, 0, 7), RegistrarID: 2000},
			Malicious: true,
		},
		{
			Name: "b.com", TLD: model.COM, DeleteDay: day,
			Prior: model.PriorRegistration{ID: 8, RegistrarID: 1000,
				Created: day.AddDays(-400).At(0, 0, 0),
				Updated: day.AddDays(-35).At(6, 30, 1),
				Expiry:  day.AddDays(-70).At(0, 0, 0)},
		},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, obs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if *got[0].Rereg != *obs[0].Rereg || got[0].Malicious != true {
		t.Fatalf("row 0: %+v", got[0])
	}
	if got[1].Rereg != nil || got[1].Prior != obs[1].Prior {
		t.Fatalf("row 1: %+v", got[1])
	}
}

func TestReadCSVRejectsBadHeader(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("nope,nope\n")); err == nil {
		t.Fatal("bad header accepted")
	}
}

func TestReadCSVRejectsBadRow(t *testing.T) {
	var buf bytes.Buffer
	WriteCSV(&buf, nil)
	buf.WriteString("a.com,com,not-a-date,1,2,x,y,z,,,false\n")
	if _, err := ReadCSV(&buf); err == nil {
		t.Fatal("bad row accepted")
	}
}

func TestReregDelay01(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 10}
	o := &model.Observation{DeleteDay: day, Rereg: &model.Rereg{Time: day.At(19, 30, 0)}}
	d, ok := ReregDelay01(o, 19)
	if !ok || d != 30*time.Minute {
		t.Fatalf("delay = %v, %v", d, ok)
	}
	if _, ok := ReregDelay01(&model.Observation{DeleteDay: day}, 19); ok {
		t.Fatal("delay for non-rereg")
	}
}
