package measure

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// randomObservation builds a structurally valid observation from a seed.
func randomObservation(rng *rand.Rand, i int) *model.Observation {
	day := simtime.Day{Year: 2018, Month: time.Month(1 + rng.Intn(12)), Dom: 1 + rng.Intn(28)}
	updated := day.AddDays(-35).At(rng.Intn(24), rng.Intn(60), rng.Intn(60))
	o := &model.Observation{
		Name:      fmt.Sprintf("p%d-%d.com", rng.Intn(1<<20), i),
		TLD:       model.COM,
		DeleteDay: day,
		Prior: model.PriorRegistration{
			ID:          uint64(rng.Int63n(1 << 40)),
			RegistrarID: rng.Intn(5000),
			Created:     updated.AddDate(-1-rng.Intn(10), 0, 0),
			Updated:     updated,
			Expiry:      updated.AddDate(0, 0, -rng.Intn(45)),
		},
	}
	if rng.Intn(2) == 0 {
		o.Rereg = &model.Rereg{
			Time:        day.At(19, 0, 0).Add(time.Duration(rng.Intn(86400)) * time.Second),
			RegistrarID: rng.Intn(5000),
		}
		o.Malicious = rng.Intn(10) == 0
	}
	return o
}

// Property: WriteCSV∘ReadCSV is the identity on arbitrary valid datasets.
func TestCSVRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50)
		in := make([]*model.Observation, n)
		for i := range in {
			in[i] = randomObservation(rng, i)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, in); err != nil {
			return false
		}
		out, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			a, b := in[i], out[i]
			if a.Name != b.Name || a.TLD != b.TLD || a.DeleteDay != b.DeleteDay {
				return false
			}
			if a.Prior.ID != b.Prior.ID || a.Prior.RegistrarID != b.Prior.RegistrarID {
				return false
			}
			if !a.Prior.Created.Equal(b.Prior.Created) ||
				!a.Prior.Updated.Equal(b.Prior.Updated) ||
				!a.Prior.Expiry.Equal(b.Prior.Expiry) {
				return false
			}
			if (a.Rereg == nil) != (b.Rereg == nil) {
				return false
			}
			if a.Rereg != nil {
				if !a.Rereg.Time.Equal(b.Rereg.Time) ||
					a.Rereg.RegistrarID != b.Rereg.RegistrarID ||
					a.Malicious != b.Malicious {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
