package measure

import (
	"bytes"
	"strings"
	"testing"

	"dropzero/internal/model"
)

func TestRegistrarsCSVRoundTrip(t *testing.T) {
	regs := []model.Registrar{
		{
			IANAID: 1000, Name: "Alpha Registrar",
			Contact: model.Contact{
				Org: "Alpha, Inc.", Email: "ops@alpha.example",
				Street: "1 Main St", City: "Denver", Country: "US", Phone: "+1.5550001",
			},
			Service: "Alpha", // must NOT round trip: ground truth stays private
		},
		{IANAID: 1001, Name: "Beta"},
	}
	var buf bytes.Buffer
	if err := WriteRegistrarsCSV(&buf, regs); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Alpha\"") && strings.Contains(buf.String(), "service") {
		t.Fatal("ground-truth service label leaked into CSV")
	}
	got, err := ReadRegistrarsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d", len(got))
	}
	if got[0].IANAID != 1000 || got[0].Contact != regs[0].Contact {
		t.Fatalf("row 0: %+v", got[0])
	}
	if got[0].Service != "" {
		t.Fatalf("service label round-tripped: %q", got[0].Service)
	}
}

func TestRegistrarsCSVCommaInOrg(t *testing.T) {
	regs := []model.Registrar{{
		IANAID:  1,
		Contact: model.Contact{Org: "DropCatch.com, LLC"},
	}}
	var buf bytes.Buffer
	if err := WriteRegistrarsCSV(&buf, regs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRegistrarsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Contact.Org != "DropCatch.com, LLC" {
		t.Fatalf("org = %q", got[0].Contact.Org)
	}
}

func TestReadRegistrarsCSVBadInput(t *testing.T) {
	if _, err := ReadRegistrarsCSV(bytes.NewBufferString("wrong,header\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	var buf bytes.Buffer
	WriteRegistrarsCSV(&buf, nil)
	buf.WriteString("notanumber,n,o,e,s,c,c,p\n")
	if _, err := ReadRegistrarsCSV(&buf); err == nil {
		t.Fatal("bad iana_id accepted")
	}
}
