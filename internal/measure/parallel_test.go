package measure

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"dropzero/internal/rdap"
	"dropzero/internal/registry"
)

// brokenSponsorCfg makes one sponsor's RDAP records 500 so the WHOIS
// fallback runs concurrently with the RDAP lookups.
func brokenSponsorCfg() rdap.ServerConfig {
	return rdap.ServerConfig{FailRegistrars: map[int]int{1727: http.StatusInternalServerError}}
}

// buildWorld seeds n pending .com domains (every 7th under the broken-RDAP
// sponsor), collects them, runs the Drop once, and re-registers every name
// where rereg(i) says so. It returns the number re-registered.
func buildWorld(t *testing.T, e *env, n int, rereg func(i int) bool) int {
	t.Helper()
	for i := 0; i < n; i++ {
		sponsor := 1000
		if i%7 == 0 {
			sponsor = 1727
		}
		e.seedPending(t, fmt.Sprintf("race%04d.com", i), sponsor, e.day)
	}
	if err := e.pipe.CollectDaily(context.Background(), e.day); err != nil {
		t.Fatal(err)
	}
	runner := registry.NewDropRunner(e.store, registry.DropConfig{
		StartHour: 19, BaseRatePerSec: 1000, RateJitter: 0, DayRateSpread: 0,
	})
	if _, err := runner.Run(e.day, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	reregs := 0
	for i := 0; i < n; i++ {
		if !rereg(i) {
			continue
		}
		name := fmt.Sprintf("race%04d.com", i)
		at := e.day.At(19, 0, 1+i%120)
		if _, err := e.store.CreateAt(name, 2000, 1, at); err != nil {
			t.Fatal(err)
		}
		reregs++
	}
	e.clock.Set(e.day.AddDays(60).At(12, 0, 0))
	return reregs
}

// TestPipelineParallelLookupsRace exercises CollectDaily and Finalize with a
// wide worker pool over in-proc RDAP and TCP WHOIS across many domains. Its
// value is under -race (run in CI): any unsynchronised Pipeline, rdap.Client
// or whois.Client state shows up here.
func TestPipelineParallelLookupsRace(t *testing.T) {
	e := newEnv(t, brokenSponsorCfg(), true)
	e.pipe.Parallelism = 16
	e.pipe.WHOIS.PoolSize = 16
	t.Cleanup(func() { e.pipe.WHOIS.Close() })
	const n = 120
	reregs := buildWorld(t, e, n, func(i int) bool { return i%3 == 0 })
	obs, err := e.pipe.Finalize(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(obs) != n {
		t.Fatalf("observations = %d, want %d", len(obs), n)
	}
	for i := 1; i < len(obs); i++ {
		if obs[i-1].Name >= obs[i].Name {
			t.Fatalf("Finalize output not sorted: %q before %q", obs[i-1].Name, obs[i].Name)
		}
	}
	st := e.pipe.Stats()
	if st.Lookups != n || st.Reregistered != reregs || st.NotReregistered != n-reregs {
		t.Fatalf("stats = %+v (want %d reregs)", st, reregs)
	}
	if st.WHOISFallbacks == 0 || st.FallbackFailed != 0 {
		t.Fatalf("fallback not exercised: %+v", st)
	}
}

// TestPipelineParallelMatchesSequential is the package-level determinism
// check: the same world measured with 1 worker and with 8 must yield equal
// observations and stats.
func TestPipelineParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) ([]string, Stats) {
		e := newEnv(t, brokenSponsorCfg(), true)
		e.pipe.Parallelism = parallelism
		t.Cleanup(func() { e.pipe.WHOIS.Close() })
		const n = 60
		buildWorld(t, e, n, func(i int) bool { return i%2 == 0 })
		obs, err := e.pipe.Finalize(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rows := make([]string, len(obs))
		for i, o := range obs {
			rows[i] = fmt.Sprintf("%s|%+v|%+v", o.Name, o.Prior, o.Rereg)
		}
		return rows, e.pipe.Stats()
	}
	seqRows, seqStats := run(1)
	parRows, parStats := run(8)
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatal("observations differ between parallelism 1 and 8")
	}
	if seqStats != parStats {
		t.Fatalf("stats differ:\nseq: %+v\npar: %+v", seqStats, parStats)
	}
}

// TestPipelineHonoursContextCancel verifies that a cancelled context fails
// lookups instead of hanging: the collected priors stay nil and are counted
// as fallback failures, matching the sequential error semantics.
func TestPipelineHonoursContextCancel(t *testing.T) {
	e := newEnv(t, brokenSponsorCfg(), true)
	e.pipe.Parallelism = 4
	t.Cleanup(func() { e.pipe.WHOIS.Close() })
	e.seedPending(t, "cancelled.com", 1727, e.day)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.pipe.CollectDaily(ctx, e.day); err == nil {
		// The list fetch itself may fail on the cancelled context, which is
		// also acceptable; when it does not, the lookup must have failed.
		if st := e.pipe.Stats(); st.Lookups == 1 && st.FallbackFailed != 1 {
			t.Fatalf("cancelled lookup succeeded: %+v", st)
		}
	}
}
