package measure

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"dropzero/internal/model"
)

// registrarHeader is the on-disk layout of the accreditation directory (the
// analogue of ICANN's public registrar list, contacts included).
var registrarHeader = []string{
	"iana_id", "name", "org", "email", "street", "city", "country", "phone",
}

// WriteRegistrarsCSV persists the accreditation directory. Ground-truth
// operator labels are deliberately not written: the clustering must recover
// them from contacts alone.
func WriteRegistrarsCSV(w io.Writer, regs []model.Registrar) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(registrarHeader); err != nil {
		return fmt.Errorf("measure: write registrar CSV header: %w", err)
	}
	for _, r := range regs {
		rec := []string{
			strconv.Itoa(r.IANAID), r.Name,
			r.Contact.Org, r.Contact.Email, r.Contact.Street,
			r.Contact.City, r.Contact.Country, r.Contact.Phone,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("measure: write registrar row %d: %w", r.IANAID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadRegistrarsCSV loads a directory written by WriteRegistrarsCSV.
func ReadRegistrarsCSV(r io.Reader) ([]model.Registrar, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(registrarHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("measure: read registrar CSV header: %w", err)
	}
	if header[0] != registrarHeader[0] {
		return nil, fmt.Errorf("measure: unexpected registrar CSV header %v", header)
	}
	var out []model.Registrar
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("measure: read registrar CSV line %d: %w", line, err)
		}
		id, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("measure: registrar CSV line %d: bad iana_id %q", line, rec[0])
		}
		out = append(out, model.Registrar{
			IANAID: id,
			Name:   rec[1],
			Contact: model.Contact{
				Org: rec[2], Email: rec[3], Street: rec[4],
				City: rec[5], Country: rec[6], Phone: rec[7],
			},
		})
	}
}
