package measure

import (
	"fmt"
	"slices"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// This file makes the pipeline's accumulated state exportable, for the
// simulator's crash-recovery journal. The pipeline is the one component of
// a study whose state cannot be recomputed after a crash: its lookups ran
// against the registry as it was days ago, before subsequent Drops purged
// the very registrations it recorded. So the driver checkpoints the
// pipeline alongside the registry — full state into snapshots, per-day
// deltas into the write-ahead log — and recovery reloads it instead of
// re-running lookups against a store that has since moved on.

// PendingEntry is one tracked domain in exportable form. Prior is nil while
// the metadata lookup has not succeeded yet.
type PendingEntry struct {
	Name      string
	TLD       model.TLD
	DeleteDay simtime.Day
	Prior     *model.PriorRegistration
}

// PipelineState is the pipeline's complete resumable state.
type PipelineState struct {
	Pending []PendingEntry
	Stats   Stats
}

// CollectDelta is the state change one CollectDaily call produced: the
// domains it started tracking and the prior-registration lookups it
// resolved. Applying the delta to the pipeline reproduces the call's effect
// without touching the network — which also means without re-querying a
// registry that no longer holds those registrations.
type CollectDelta struct {
	Day      simtime.Day
	Added    []PendingEntry // Prior always nil: lookups resolve separately
	Resolved []PendingEntry // Prior always non-nil
	Stats    Stats
}

// sub returns the counter increments between two readings.
func (s Stats) sub(before Stats) Stats {
	return Stats{
		ListEntries:     s.ListEntries - before.ListEntries,
		Lookups:         s.Lookups - before.Lookups,
		RDAPErrors:      s.RDAPErrors - before.RDAPErrors,
		WHOISFallbacks:  s.WHOISFallbacks - before.WHOISFallbacks,
		FallbackFailed:  s.FallbackFailed - before.FallbackFailed,
		Reregistered:    s.Reregistered - before.Reregistered,
		NotReregistered: s.NotReregistered - before.NotReregistered,
		OracleLookups:   s.OracleLookups - before.OracleLookups,
	}
}

// State exports a deep copy of the pipeline's tracked domains and counters,
// sorted by name so equal pipelines export equal states.
func (p *Pipeline) State() PipelineState {
	st := PipelineState{Stats: p.stats}
	for _, pd := range p.pending {
		e := PendingEntry{Name: pd.name, TLD: pd.tld, DeleteDay: pd.deleteDay}
		if pd.prior != nil {
			c := *pd.prior
			e.Prior = &c
		}
		st.Pending = append(st.Pending, e)
	}
	slices.SortFunc(st.Pending, func(a, b PendingEntry) int {
		if a.Name < b.Name {
			return -1
		}
		if a.Name > b.Name {
			return 1
		}
		return 0
	})
	return st
}

// Restore loads an exported state into a fresh pipeline, replacing whatever
// it tracked.
func (p *Pipeline) Restore(st PipelineState) {
	p.pending = make(map[string]*pendingDomain, len(st.Pending))
	for _, e := range st.Pending {
		pd := &pendingDomain{name: e.Name, tld: e.TLD, deleteDay: e.DeleteDay}
		if e.Prior != nil {
			c := *e.Prior
			pd.prior = &c
		}
		p.pending[e.Name] = pd
	}
	p.stats = st.Stats
}

// TakeDelta returns the delta accumulated since the last call (or since the
// pipeline was created) and resets it. Only meaningful with TrackDeltas
// set; returns nil otherwise.
func (p *Pipeline) TakeDelta() *CollectDelta {
	d := p.delta
	p.delta = nil
	return d
}

// ApplyDelta replays a recorded CollectDaily outcome into the pipeline. The
// replay is exact: the tracked set, resolved priors and counters end up as
// the original call left them.
func (p *Pipeline) ApplyDelta(d *CollectDelta) error {
	if p.pending == nil {
		p.pending = make(map[string]*pendingDomain)
	}
	for _, e := range d.Added {
		if _, seen := p.pending[e.Name]; seen {
			return fmt.Errorf("measure: replay day %v: %s already tracked", d.Day, e.Name)
		}
		p.pending[e.Name] = &pendingDomain{name: e.Name, tld: e.TLD, deleteDay: e.DeleteDay}
	}
	for _, e := range d.Resolved {
		pd, ok := p.pending[e.Name]
		if !ok {
			return fmt.Errorf("measure: replay day %v: resolved %s is not tracked", d.Day, e.Name)
		}
		c := *e.Prior
		pd.prior = &c
	}
	p.stats.add(d.Stats)
	return nil
}
