// Package measure implements the paper's data-collection methodology (§3):
// download the registry's pending-delete list every day; three days before a
// domain's scheduled deletion, collect the expiring registration's metadata
// over RDAP (falling back to WHOIS on server errors); at least eight weeks
// after the deletion date, repeat the lookup to detect a re-registration;
// finally, query the maliciousness oracle for every re-registered name.
package measure

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strconv"
	"strings"
	"time"

	"dropzero/internal/dropscope"
	"dropzero/internal/model"
	"dropzero/internal/par"
	"dropzero/internal/rdap"
	"dropzero/internal/safebrowsing"
	"dropzero/internal/simtime"
	"dropzero/internal/whois"
)

// LookaheadLookupDays is how many days before the scheduled deletion the
// prior-registration metadata is collected.
const LookaheadLookupDays = 3

// Pipeline drives the measurement. It is stateful across days: create one
// per study.
type Pipeline struct {
	Lists *dropscope.Client
	RDAP  *rdap.Client
	// WHOIS is the fallback for RDAP server errors; nil disables fallback,
	// making those domains drop out of the dataset (with a counted error).
	WHOIS *whois.Client
	// Oracle is queried for re-registered domains at Finalize; nil leaves
	// all labels false.
	Oracle *safebrowsing.Client

	// TLDFilter restricts lookups to one zone; the paper restricted lookups
	// to .com. Empty means no filter.
	TLDFilter model.TLD

	// Parallelism bounds the worker pool that fans per-domain lookups out in
	// CollectDaily and Finalize; 0 defaults to GOMAXPROCS, 1 is fully
	// sequential. Results are merged in canonical (name) order, so datasets
	// and Stats are identical at every setting.
	Parallelism int

	// TrackDeltas makes each CollectDaily record its state changes for the
	// durability journal; the driver drains them with TakeDelta. Off by
	// default so non-journaled studies pay nothing.
	TrackDeltas bool

	pending map[string]*pendingDomain
	stats   Stats
	delta   *CollectDelta
}

type pendingDomain struct {
	name      string
	tld       model.TLD
	deleteDay simtime.Day
	prior     *model.PriorRegistration
}

// Stats counts pipeline activity, including the RDAP failures that exercised
// the WHOIS fallback.
type Stats struct {
	ListEntries     int
	Lookups         int
	RDAPErrors      int
	WHOISFallbacks  int
	FallbackFailed  int
	Reregistered    int
	NotReregistered int
	OracleLookups   int
}

// add accumulates the per-lookup counter deltas produced by the workers.
// Merging happens on the caller's goroutine, in canonical lookup order, so
// the totals match a sequential run exactly.
func (s *Stats) add(d Stats) {
	s.ListEntries += d.ListEntries
	s.Lookups += d.Lookups
	s.RDAPErrors += d.RDAPErrors
	s.WHOISFallbacks += d.WHOISFallbacks
	s.FallbackFailed += d.FallbackFailed
	s.Reregistered += d.Reregistered
	s.NotReregistered += d.NotReregistered
	s.OracleLookups += d.OracleLookups
}

// Stats returns a copy of the activity counters.
func (p *Pipeline) Stats() Stats { return p.stats }

// workers resolves the Parallelism knob.
func (p *Pipeline) workers() int { return par.Workers(p.Parallelism) }

// byName orders pending domains canonically; the fan-out/merge order of both
// lookup passes, which makes parallel runs bit-for-bit deterministic.
func byName(a, b *pendingDomain) int { return strings.Compare(a.name, b.name) }

// PendingCount returns the number of domains currently tracked.
func (p *Pipeline) PendingCount() int { return len(p.pending) }

// CollectDaily performs one day's collection: download the day's pending
// delete list and fetch prior-registration metadata for domains whose
// deletion is (at most) three days away. Call once per simulated day, in
// order.
func (p *Pipeline) CollectDaily(ctx context.Context, today simtime.Day) error {
	if p.pending == nil {
		p.pending = make(map[string]*pendingDomain)
	}
	if p.TrackDeltas {
		p.delta = &CollectDelta{Day: today}
	}
	statsBefore := p.stats
	entries, err := p.Lists.Fetch(ctx, today)
	if err != nil {
		return fmt.Errorf("measure: fetch pending list for %v: %w", today, err)
	}
	for _, e := range entries {
		tld, ok := model.TLDOf(e.Name)
		if !ok {
			continue
		}
		if p.TLDFilter != "" && tld != p.TLDFilter {
			continue
		}
		if _, seen := p.pending[e.Name]; seen {
			continue
		}
		p.pending[e.Name] = &pendingDomain{name: e.Name, tld: tld, deleteDay: e.DeleteDay}
		p.stats.ListEntries++
		if p.delta != nil {
			p.delta.Added = append(p.delta.Added, PendingEntry{Name: e.Name, TLD: tld, DeleteDay: e.DeleteDay})
		}
	}
	// Fetch metadata for domains deleting within the lookup window that we
	// have not resolved yet. The ≤ comparison (rather than ==) bootstraps
	// the first days of the study, when domains closer than three days out
	// appear on the very first list. Lookups fan out over the worker pool;
	// failed lookups leave prior nil and are retried on later days while the
	// window lasts.
	cutoff := today.AddDays(LookaheadLookupDays)
	due := make([]*pendingDomain, 0, len(p.pending))
	for _, pd := range p.pending {
		if pd.prior != nil || cutoff.Before(pd.deleteDay) {
			continue
		}
		due = append(due, pd)
	}
	slices.SortFunc(due, byName)
	type priorResult struct {
		prior *model.PriorRegistration
		delta Stats
	}
	results := par.Do(p.workers(), len(due), func(i int) priorResult {
		var r priorResult
		r.prior, r.delta = p.lookupPrior(ctx, due[i].name)
		return r
	})
	for i, r := range results {
		p.stats.add(r.delta)
		due[i].prior = r.prior
		if p.delta != nil && r.prior != nil {
			c := *r.prior
			p.delta.Resolved = append(p.delta.Resolved,
				PendingEntry{Name: due[i].name, TLD: due[i].tld, DeleteDay: due[i].deleteDay, Prior: &c})
		}
	}
	if p.delta != nil {
		p.delta.Stats = p.stats.sub(statsBefore)
	}
	return nil
}

// lookupPrior fetches registration metadata over RDAP, falling back to WHOIS
// on 5xx. It runs on pool workers: it must not touch Pipeline state, so it
// returns its counter increments as a Stats delta (prior is nil on failure).
func (p *Pipeline) lookupPrior(ctx context.Context, name string) (*model.PriorRegistration, Stats) {
	delta := Stats{Lookups: 1}
	dr, err := p.RDAP.Domain(ctx, name)
	if err == nil {
		prior, perr := priorFromRDAP(dr)
		if perr != nil {
			return nil, delta
		}
		return prior, delta
	}
	if errors.Is(err, rdap.ErrNotFound) {
		return nil, delta
	}
	delta.RDAPErrors++
	if p.WHOIS == nil {
		delta.FallbackFailed++
		return nil, delta
	}
	delta.WHOISFallbacks++
	d, werr := p.WHOIS.LookupContext(ctx, name)
	if werr != nil {
		delta.FallbackFailed++
		return nil, delta
	}
	return &model.PriorRegistration{
		ID:          d.ID,
		RegistrarID: d.RegistrarID,
		Created:     d.Created,
		Updated:     d.Updated,
		Expiry:      d.Expiry,
	}, delta
}

func priorFromRDAP(dr *rdap.DomainResponse) (*model.PriorRegistration, error) {
	id, err := rdap.ParseHandle(dr.Handle)
	if err != nil {
		return nil, err
	}
	regID, err := registrarID(dr)
	if err != nil {
		return nil, err
	}
	created, ok := dr.EventDate(rdap.EventRegistration)
	if !ok {
		return nil, fmt.Errorf("measure: %s: RDAP response missing registration event", dr.LDHName)
	}
	updated, ok := dr.EventDate(rdap.EventLastChanged)
	if !ok {
		return nil, fmt.Errorf("measure: %s: RDAP response missing last-changed event", dr.LDHName)
	}
	expiry, ok := dr.EventDate(rdap.EventExpiration)
	if !ok {
		return nil, fmt.Errorf("measure: %s: RDAP response missing expiration event", dr.LDHName)
	}
	return &model.PriorRegistration{
		ID:          id,
		RegistrarID: regID,
		Created:     created,
		Updated:     updated,
		Expiry:      expiry,
	}, nil
}

func registrarID(dr *rdap.DomainResponse) (int, error) {
	for _, e := range dr.Entities {
		for _, role := range e.Roles {
			if role == "registrar" {
				return strconv.Atoi(e.Handle)
			}
		}
	}
	return 0, fmt.Errorf("measure: %s: RDAP response has no registrar entity", dr.LDHName)
}

// Finalize performs the T+8-weeks re-lookups and assembles the dataset. Call
// once, after advancing the clock at least eight weeks past the last
// deletion day. Domains whose prior metadata could not be collected are
// omitted, like the paper's error cases. Re-lookups (and the oracle queries
// for re-registered names) fan out over the worker pool; the dataset is
// returned sorted by name regardless of Parallelism.
func (p *Pipeline) Finalize(ctx context.Context) ([]*model.Observation, error) {
	collected := make([]*pendingDomain, 0, len(p.pending))
	for _, pd := range p.pending {
		if pd.prior != nil {
			collected = append(collected, pd)
		}
	}
	slices.SortFunc(collected, byName)
	type finalResult struct {
		// obs is nil for restored domains (same object ID: the deletion
		// never happened), which are not part of the study population.
		obs   *model.Observation
		delta Stats
		err   error
	}
	results := par.Do(p.workers(), len(collected), func(i int) finalResult {
		pd := collected[i]
		obs := &model.Observation{
			Name:      pd.name,
			TLD:       pd.tld,
			DeleteDay: pd.deleteDay,
			Prior:     *pd.prior,
		}
		var r finalResult
		cur, err := p.lookupCurrent(ctx, pd.name)
		switch {
		case err == nil && cur != nil && cur.ID != pd.prior.ID:
			obs.Rereg = &model.Rereg{Time: cur.Created, RegistrarID: cur.RegistrarID}
			r.delta.Reregistered++
		case err == nil && cur != nil:
			return r
		default:
			r.delta.NotReregistered++
		}
		if obs.Rereg != nil && p.Oracle != nil {
			r.delta.OracleLookups++
			mal, err := p.Oracle.Lookup(pd.name)
			if err != nil {
				r.err = fmt.Errorf("measure: oracle lookup %s: %w", pd.name, err)
				return r
			}
			obs.Malicious = mal
		}
		r.obs = obs
		return r
	})
	out := make([]*model.Observation, 0, len(collected))
	for _, r := range results {
		p.stats.add(r.delta)
		if r.err != nil {
			return nil, r.err
		}
		if r.obs != nil {
			out = append(out, r.obs)
		}
	}
	return out, nil
}

// lookupCurrent fetches the current registration, nil when the name is
// unregistered.
func (p *Pipeline) lookupCurrent(ctx context.Context, name string) (*model.PriorRegistration, error) {
	dr, err := p.RDAP.Domain(ctx, name)
	if err == nil {
		return priorFromRDAP(dr)
	}
	if errors.Is(err, rdap.ErrNotFound) {
		return nil, nil
	}
	if p.WHOIS != nil {
		d, werr := p.WHOIS.LookupContext(ctx, name)
		if werr == nil {
			return &model.PriorRegistration{
				ID:          d.ID,
				RegistrarID: d.RegistrarID,
				Created:     d.Created,
				Updated:     d.Updated,
				Expiry:      d.Expiry,
			}, nil
		}
		if errors.Is(werr, whois.ErrNoMatch) {
			return nil, nil
		}
	}
	return nil, err
}

// ReregDelay01 is a tiny helper for callers that need the wall-clock
// re-registration offset from the Drop start hour, used by Figure 2.
func ReregDelay01(o *model.Observation, dropStartHour int) (time.Duration, bool) {
	if o.Rereg == nil {
		return 0, false
	}
	start := o.DeleteDay.At(dropStartHour, 0, 0)
	return o.Rereg.Time.Sub(start), true
}
