package registry

import (
	"fmt"
	"sync"

	"dropzero/internal/model"
	"dropzero/internal/zone"
)

// This file is the store's zone registry: which TLDs the store operates,
// under which lifecycle and drop policy. Every store hosts the default
// .com/.net zone from construction (not journaled — pre-federation WALs
// replay unchanged); further zones are add-only via AddZone, journaled as
// MutAddZone so recovery, replication and the event feed all learn them in
// stream order, before any domain record that needs them.
//
// Locking: zoneMu is a leaf lock like delMu — splitName reads it while a
// shard lock is held (replay validates names inside the shard critical
// section), so no path may acquire a shard lock while holding zoneMu.
// installZoneDue therefore runs after zoneMu is released; that is safe
// because a just-added zone cannot have domains yet (creating one was
// impossible while its TLD was unknown).

// zoneTable is the store's zone state under zoneMu.
type zoneTable struct {
	mu      sync.RWMutex
	zones   []zone.Config
	tldZone map[model.TLD]int // TLD -> index into zones
}

func (zt *zoneTable) init() {
	def := zone.Default()
	zt.zones = []zone.Config{def}
	zt.tldZone = make(map[model.TLD]int, len(def.TLDs))
	for _, t := range def.TLDs {
		zt.tldZone[t] = 0
	}
}

// Zones returns the store's zone configs in installation order; index 0 is
// always the default .com/.net zone.
func (s *Store) Zones() []zone.Config {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	out := make([]zone.Config, len(s.zoneTab.zones))
	copy(out, s.zoneTab.zones)
	return out
}

// ExtraZones returns the zones installed beyond the default one — exactly
// the set a snapshot must carry (the default zone is implicit in every
// store).
func (s *Store) ExtraZones() []zone.Config {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	out := make([]zone.Config, len(s.zoneTab.zones)-1)
	copy(out, s.zoneTab.zones[1:])
	return out
}

// ZoneOf returns the zone operating t.
func (s *Store) ZoneOf(t model.TLD) (zone.Config, bool) {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	i, ok := s.zoneTab.tldZone[t]
	if !ok {
		return zone.Config{}, false
	}
	return s.zoneTab.zones[i], true
}

// ZoneByName returns the named zone's config.
func (s *Store) ZoneByName(name string) (zone.Config, bool) {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	for _, z := range s.zoneTab.zones {
		if z.Name == name {
			return z, true
		}
	}
	return zone.Config{}, false
}

// HostsTLD reports whether some zone of this store operates t.
func (s *Store) HostsTLD(t model.TLD) bool {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	_, ok := s.zoneTab.tldZone[t]
	return ok
}

// AddZone installs a new zone: its TLDs become creatable, its lifecycle
// parameters drive the due-day indexing of its domains, and the addition is
// journaled (MutAddZone) so replicas and recovery replay it in stream order.
// Zones are add-only and their TLD sets must not overlap any installed
// zone's.
func (s *Store) AddZone(z zone.Config) error {
	if err := z.Validate(); err != nil {
		return err
	}
	zt := &s.zoneTab
	zt.mu.Lock()
	if err := zt.installLocked(z); err != nil {
		zt.mu.Unlock()
		return err
	}
	wait := s.appendJournal(Mutation{Kind: MutAddZone, Zone: z})
	s.bumpGen()
	zt.mu.Unlock()
	s.installZoneDue()
	return waitJournal(wait)
}

// installLocked validates uniqueness and appends z under zt.mu.
func (zt *zoneTable) installLocked(z zone.Config) error {
	for _, have := range zt.zones {
		if have.Name == z.Name {
			return fmt.Errorf("registry: zone %q already installed", z.Name)
		}
	}
	for _, t := range z.TLDs {
		if i, clash := zt.tldZone[t]; clash {
			return fmt.Errorf("registry: TLD %q already operated by zone %q", t, zt.zones[i].Name)
		}
	}
	idx := len(zt.zones)
	zt.zones = append(zt.zones, z)
	for _, t := range z.TLDs {
		zt.tldZone[t] = idx
	}
	return nil
}

// applyAddZone replays a MutAddZone record (recovery/replication): same
// state change as AddZone without re-journaling.
func (s *Store) applyAddZone(z zone.Config) error {
	zt := &s.zoneTab
	zt.mu.Lock()
	if err := zt.installLocked(z); err != nil {
		zt.mu.Unlock()
		return err
	}
	s.bumpGen()
	zt.mu.Unlock()
	s.installZoneDue()
	return nil
}

// RestoreZones installs snapshot-carried zones during recovery (the store is
// empty and not yet serving; no journaling, no generation bump — FinishRestore
// installs the snapshot's counter).
func (s *Store) RestoreZones(zs []zone.Config) error {
	zt := &s.zoneTab
	zt.mu.Lock()
	for _, z := range zs {
		if err := zt.installLocked(z); err != nil {
			zt.mu.Unlock()
			return err
		}
	}
	zt.mu.Unlock()
	s.installZoneDue()
	return nil
}

// zoneDuePerTLD derives the per-TLD due-day parameter overrides from the
// non-default zones. The default zone's parameters stay the policy base
// (installed by NewLifecycle), keeping pre-federation stores bit-identical.
func (s *Store) zoneDuePerTLD() map[model.TLD]*duePolicy {
	s.zoneTab.mu.RLock()
	defer s.zoneTab.mu.RUnlock()
	if len(s.zoneTab.zones) == 1 {
		return nil
	}
	per := make(map[model.TLD]*duePolicy)
	for _, z := range s.zoneTab.zones[1:] {
		zp := &duePolicy{
			redemptionDays:   z.Lifecycle.RedemptionDays,
			graceDays:        z.Lifecycle.GraceDays,
			defaultGraceDays: z.Lifecycle.DefaultGraceDays,
		}
		for _, t := range z.TLDs {
			per[t] = zp
		}
	}
	return per
}

// installZoneDue pushes the current per-TLD due overrides into every shard's
// policy. Shards are updated one at a time under their own locks; a new
// zone's TLDs have no indexed domains yet, so no bucket rebuild is needed.
func (s *Store) installZoneDue() {
	per := s.zoneDuePerTLD()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.policy.perTLD = per
		sh.mu.Unlock()
	}
}

// CheckName validates a domain name's syntax and that its TLD is operated by
// one of this store's zones, without taking any shard lock, so protocol
// front ends can reject garbage before charging rate-limit budget (an
// invalid-name create must never cost a token).
func (s *Store) CheckName(name string) error {
	_, _, err := s.splitName(name)
	return err
}
