// Full-scan reference engine. These are the pre-index implementations of
// the three daily sweeps — Lifecycle.Tick, DropRunner.BuildQueue and
// Store.PendingDeletions — retained verbatim (clone-per-candidate cost
// profile included) as the behavioural oracle for the differential tests
// and the baseline for BenchmarkDailySweep. Store.SetScanEngine(true)
// routes the public entry points here; the due-day indexes are still
// maintained, only the read paths change, so the two engines must agree
// byte-for-byte on any store and any seed.

package registry

import (
	"cmp"
	"slices"
	"strings"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// tickScan is the full-scan Lifecycle.Tick: every live registration is
// cloned and examined once per call, due or not.
func (l *Lifecycle) tickScan(now time.Time) int {
	now = simtime.Trunc(now)
	day := simtime.DayOf(now)

	type change struct {
		d  *model.Domain
		fn func() error
	}
	var changes []change

	l.store.Each(func(d *model.Domain) bool {
		if !l.inScope(d) {
			return true
		}
		switch d.Status {
		case model.StatusActive:
			if !d.Expiry.After(now) {
				changes = append(changes, change{d, func() error {
					// Registry auto-renews at expiration; the registrar's
					// grace clock starts at the old expiry.
					return l.store.setState(d.Name, model.StatusAutoRenew, d.Expiry, simtime.Day{})
				}})
			}
		case model.StatusAutoRenew:
			graceEnd := d.Expiry.AddDate(0, 0, l.cfg.GraceDaysFor(d.RegistrarID))
			if !graceEnd.After(now) {
				batch := l.cfg.BatchInstant(day, d.RegistrarID)
				changes = append(changes, change{d, func() error {
					// Registrar deletes the domain: this is the "last
					// updated" instant that will drive the deletion order.
					return l.store.setState(d.Name, model.StatusRedemption, batch, simtime.Day{})
				}})
			}
		case model.StatusRedemption:
			redemptionEnd := d.Updated.AddDate(0, 0, l.cfg.RedemptionDays)
			if !redemptionEnd.After(now) {
				deleteDay := day.AddDays(l.cfg.PendingDeleteDays)
				changes = append(changes, change{d, func() error {
					return l.store.MarkPendingDelete(d.Name, time.Time{}, deleteDay)
				}})
			}
		}
		return true
	})

	slices.SortFunc(changes, func(a, b change) int { return cmp.Compare(a.d.ID, b.d.ID) })
	n := 0
	for _, c := range changes {
		if err := c.fn(); err == nil {
			n++
		}
	}
	return n
}

// buildQueueScan is the full-scan DropRunner.BuildQueue: one pass over the
// whole store, cloning every domain, filtering on (status, DeleteDay).
func (r *DropRunner) buildQueueScan(day simtime.Day) []QueueEntry {
	var q []QueueEntry
	r.store.Each(func(d *model.Domain) bool {
		if !r.inScope(d.TLD) {
			return true
		}
		if d.Status == model.StatusPendingDelete && d.DeleteDay == day {
			q = append(q, QueueEntry{Name: d.Name, TLD: d.TLD, ID: d.ID, Updated: d.Updated})
		}
		return true
	})
	slices.SortFunc(q, func(a, b QueueEntry) int {
		if c := a.Updated.Compare(b.Updated); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return q
}

// pendingDeletionsScan is the full-scan Store.PendingDeletions: clone and
// filter everything, then sort the survivors.
func (s *Store) pendingDeletionsScan(from simtime.Day, days int) []*model.Domain {
	end := from.AddDays(days)
	out := make([]*model.Domain, 0, 1024)
	s.each(func(d *model.Domain) bool {
		if d.Status != model.StatusPendingDelete {
			return true
		}
		if d.DeleteDay.Before(from) || !d.DeleteDay.Before(end) {
			return true
		}
		out = append(out, cloned(d))
		return true
	})
	slices.SortFunc(out, func(a, b *model.Domain) int {
		if a.DeleteDay != b.DeleteDay {
			if a.DeleteDay.Before(b.DeleteDay) {
				return -1
			}
			return 1
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}
