package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// seedPending inserts n pendingDelete domains for day with randomised update
// times (batched per registrar) and returns the store.
func seedPending(t *testing.T, n int, day simtime.Day, rng *rand.Rand) *Store {
	t.Helper()
	s := NewStore(testClock())
	for r := 0; r < 10; r++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + r, Name: fmt.Sprintf("R%d", r)})
	}
	updatedDay := day.AddDays(-35)
	for i := 0; i < n; i++ {
		reg := 1000 + rng.Intn(10)
		// Batch: registrar's update lands at one specific second.
		updated := updatedDay.At(6, reg%60, (reg*7)%60)
		created := updated.AddDate(-1-rng.Intn(5), 0, 0)
		name := fmt.Sprintf("pd%04d.com", i)
		if rng.Intn(10) == 0 {
			name = fmt.Sprintf("pd%04d.net", i)
		}
		if _, err := s.SeedAt(name, reg, created, updated, updated.AddDate(0, 0, -30), model.StatusPendingDelete, day); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestBuildQueueOrder(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	rng := rand.New(rand.NewSource(1))
	s := seedPending(t, 500, day, rng)
	q := NewDropRunner(s, DefaultDropConfig()).BuildQueue(day)
	if len(q) != 500 {
		t.Fatalf("queue length = %d", len(q))
	}
	for i := 1; i < len(q); i++ {
		a, b := q[i-1], q[i]
		if b.Updated.Before(a.Updated) {
			t.Fatalf("queue not sorted by update time at %d", i)
		}
		if a.Updated.Equal(b.Updated) && b.ID < a.ID {
			t.Fatalf("tie not broken by ID at %d", i)
		}
	}
}

func TestBuildQueueMixesTLDs(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	s := seedPending(t, 500, day, rand.New(rand.NewSource(2)))
	q := NewDropRunner(s, DefaultDropConfig()).BuildQueue(day)
	com, net := 0, 0
	for _, e := range q {
		switch e.TLD {
		case model.COM:
			com++
		case model.NET:
			net++
		}
	}
	if com == 0 || net == 0 {
		t.Fatalf("queue should contain both TLDs: com=%d net=%d", com, net)
	}
}

func TestDropRunDeletesEverything(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	s := seedPending(t, 300, day, rand.New(rand.NewSource(3)))
	before := s.Count()
	events, err := NewDropRunner(s, DefaultDropConfig()).Run(day, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 300 {
		t.Fatalf("events = %d, want 300", len(events))
	}
	if s.Count() != before-300 {
		t.Fatalf("store count = %d, want %d", s.Count(), before-300)
	}
	if len(s.Deletions(day)) != 300 {
		t.Fatalf("archived deletions = %d", len(s.Deletions(day)))
	}
}

func TestDropRunTimesMonotone(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	s := seedPending(t, 400, day, rand.New(rand.NewSource(5)))
	events, err := NewDropRunner(s, DefaultDropConfig()).Run(day, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	start := day.At(19, 0, 0)
	for i, ev := range events {
		if ev.Rank != i {
			t.Fatalf("rank %d at position %d", ev.Rank, i)
		}
		if ev.Time.Before(start) {
			t.Fatalf("deletion before Drop start: %v", ev.Time)
		}
		if i > 0 && ev.Time.Before(events[i-1].Time) {
			t.Fatalf("deletion times not monotone at %d", i)
		}
		if ev.Time.Nanosecond() != 0 {
			t.Fatalf("deletion time not second-precise: %v", ev.Time)
		}
	}
}

func TestDropRatePacing(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	s := seedPending(t, 2000, day, rand.New(rand.NewSource(7)))
	cfg := DropConfig{StartHour: 19, BaseRatePerSec: 10, RateJitter: 0, DayRateSpread: 0}
	events, err := NewDropRunner(s, cfg).Run(day, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	// 2000 domains at exactly 10/s should take 200 seconds.
	want := day.At(19, 0, 0).Add(199 * time.Second)
	if got := EndTime(events); !got.Equal(want) {
		t.Fatalf("end time = %v, want %v", got, want)
	}
}

func TestDropFractionalRate(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	s := seedPending(t, 100, day, rand.New(rand.NewSource(9)))
	cfg := DropConfig{StartHour: 19, BaseRatePerSec: 0.5, RateJitter: 0, DayRateSpread: 0}
	events, err := NewDropRunner(s, cfg).Run(day, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	// 100 domains at 0.5/s: one deletion every other second, ~199 s total.
	got := EndTime(events).Sub(day.At(19, 0, 0))
	if got < 195*time.Second || got > 203*time.Second {
		t.Fatalf("duration = %v, want ≈199 s", got)
	}
}

func TestDropDayRateSpreadVariesDuration(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	cfg := DropConfig{StartHour: 19, BaseRatePerSec: 10, RateJitter: 0, DayRateSpread: 0.3}
	durations := make(map[time.Duration]bool)
	for seed := int64(0); seed < 5; seed++ {
		s := seedPending(t, 1000, day, rand.New(rand.NewSource(20+seed)))
		events, err := NewDropRunner(s, cfg).Run(day, rand.New(rand.NewSource(30+seed)))
		if err != nil {
			t.Fatal(err)
		}
		durations[EndTime(events).Sub(day.At(19, 0, 0))] = true
	}
	if len(durations) < 2 {
		t.Fatal("day rate spread produced identical durations")
	}
}

func TestDropEmptyDay(t *testing.T) {
	s := NewStore(testClock())
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	events, err := NewDropRunner(s, DefaultDropConfig()).Run(day, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 0 {
		t.Fatalf("events on empty day: %d", len(events))
	}
	if !EndTime(events).IsZero() {
		t.Fatal("EndTime of empty slice not zero")
	}
}

func TestDropOnlyTargetsGivenDay(t *testing.T) {
	dayA := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	dayB := dayA.Next()
	s := seedPending(t, 50, dayA, rand.New(rand.NewSource(11)))
	// Add domains for the next day too.
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("next%02d.com", i)
		updated := dayB.AddDays(-35).At(6, 0, 0)
		if _, err := s.SeedAt(name, 1000, updated.AddDate(-1, 0, 0), updated, updated, model.StatusPendingDelete, dayB); err != nil {
			t.Fatal(err)
		}
	}
	events, err := NewDropRunner(s, DefaultDropConfig()).Run(dayA, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 50 {
		t.Fatalf("deleted %d, want 50", len(events))
	}
	if s.Count() != 30 {
		t.Fatalf("remaining = %d, want 30", s.Count())
	}
}

// Property: for any random set of (updated, id) pairs, the queue order is a
// total order consistent with (Updated, ID) lexicographic comparison.
func TestQueueOrderProperty(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 20}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(testClock())
		s.AddRegistrar(model.Registrar{IANAID: 1000})
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			updated := day.AddDays(-35).At(6, 0, rng.Intn(30))
			name := fmt.Sprintf("p%d-%d.com", seed&0xffff, i)
			if _, err := s.SeedAt(name, 1000, updated.AddDate(-1, 0, 0), updated, updated, model.StatusPendingDelete, day); err != nil {
				return false
			}
		}
		q := NewDropRunner(s, DefaultDropConfig()).BuildQueue(day)
		for i := 1; i < len(q); i++ {
			a, b := q[i-1], q[i]
			if b.Updated.Before(a.Updated) {
				return false
			}
			if a.Updated.Equal(b.Updated) && b.ID <= a.ID {
				return false
			}
		}
		return len(q) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
