package registry

import (
	"fmt"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// bucketDayOf returns the due-index bucket day currently holding the domain,
// or ok=false when the domain is in no bucket of its shard's status index.
func bucketDayOf(s *Store, name string) (simtime.Day, bool) {
	sh := s.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.domains[name]
	if !ok || int(d.Status) >= len(sh.due) {
		return simtime.Day{}, false
	}
	for day, b := range sh.due[d.Status].buckets {
		if _, ok := b[d.ID]; ok {
			return day, true
		}
	}
	return simtime.Day{}, false
}

// indexSize counts every indexed domain across all shards and states, for
// leak checks.
func indexSize(s *Store) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for j := range sh.due {
			for _, b := range sh.due[j].buckets {
				n += len(b)
			}
		}
		sh.mu.RUnlock()
	}
	return n
}

// TestDueIndexFollowsLifecycle walks one domain through every mutator and
// asserts it always sits in exactly one bucket, keyed by the day its next
// transition becomes due under the installed policy.
func TestDueIndexFollowsLifecycle(t *testing.T) {
	s, clock := testStore(t)
	cfg := DefaultLifecycleConfig()
	cfg.GraceDays = map[int]int{1000: 40, 1001: 40}
	NewLifecycle(s, cfg)

	d, err := s.Create("indexed.com", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if day, ok := bucketDayOf(s, "indexed.com"); !ok || day != simtime.DayOf(d.Expiry) {
		t.Fatalf("active bucket = %v (ok=%v), want expiry day %v", day, ok, simtime.DayOf(d.Expiry))
	}

	// Renew moves the expiry bucket.
	if err := s.Renew("indexed.com", 1000, 2); err != nil {
		t.Fatal(err)
	}
	d, _ = s.Get("indexed.com")
	if day, _ := bucketDayOf(s, "indexed.com"); day != simtime.DayOf(d.Expiry) {
		t.Fatalf("bucket after renew = %v, want %v", day, simtime.DayOf(d.Expiry))
	}

	// autoRenew buckets at grace end (expiry + 40 days here).
	if err := s.setState("indexed.com", model.StatusAutoRenew, d.Expiry, simtime.Day{}); err != nil {
		t.Fatal(err)
	}
	if day, _ := bucketDayOf(s, "indexed.com"); day != simtime.DayOf(d.Expiry.AddDate(0, 0, 40)) {
		t.Fatalf("autoRenew bucket = %v, want grace end", day)
	}

	// Transfer re-files under the gaining registrar's grace.
	code, err := s.AuthInfo("indexed.com", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transfer("indexed.com", 1001, code); err != nil {
		t.Fatal(err)
	}
	d, _ = s.Get("indexed.com")
	if day, _ := bucketDayOf(s, "indexed.com"); day != simtime.DayOf(d.Expiry) {
		t.Fatalf("bucket after transfer = %v, want expiry day (active again)", day)
	}

	// Redemption buckets at redemption end (Updated + RedemptionDays);
	// TouchAt moves Updated and must re-file the bucket.
	if err := s.MarkRedemption("indexed.com", clock.Now()); err != nil {
		t.Fatal(err)
	}
	wantRed := simtime.DayOf(simtime.Trunc(clock.Now()).AddDate(0, 0, cfg.RedemptionDays))
	if day, _ := bucketDayOf(s, "indexed.com"); day != wantRed {
		t.Fatalf("redemption bucket = %v, want %v", day, wantRed)
	}

	// pendingDelete buckets at DeleteDay; purge drops it from the index.
	delDay := simtime.DayOf(clock.Now()).AddDays(5)
	if err := s.MarkPendingDelete("indexed.com", time.Time{}, delDay); err != nil {
		t.Fatal(err)
	}
	if day, _ := bucketDayOf(s, "indexed.com"); day != delDay {
		t.Fatalf("pendingDelete bucket = %v, want %v", day, delDay)
	}
	if _, err := s.purge("indexed.com", delDay.At(19, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if n := indexSize(s); n != 0 {
		t.Fatalf("index holds %d entries after purge, want 0", n)
	}
}

// TestDueIndexDaysBookkeeping exercises the sorted non-empty-day list
// directly: out-of-order inserts, emptied buckets, repeated days.
func TestDueIndexDaysBookkeeping(t *testing.T) {
	var ix dueIndex
	base := simtime.Day{Year: 2018, Month: time.March, Dom: 10}
	doms := make([]*model.Domain, 6)
	for i := range doms {
		doms[i] = &model.Domain{ID: uint64(i + 1)}
	}
	ix.add(base.AddDays(3), doms[0])
	ix.add(base, doms[1])
	ix.add(base.AddDays(7), doms[2])
	ix.add(base, doms[3])

	var seen []uint64
	ix.through(base.AddDays(3), func(d *model.Domain) { seen = append(seen, d.ID) })
	if len(seen) != 3 {
		t.Fatalf("through visited %d, want 3 (two at base, one at +3)", len(seen))
	}
	if got := ix.count(base); got != 2 {
		t.Fatalf("count(base) = %d, want 2", got)
	}

	// Emptying a bucket removes its day; a later re-add restores it.
	ix.remove(base, 2)
	ix.remove(base, 4)
	if got := len(ix.days); got != 2 {
		t.Fatalf("days after emptying base = %d, want 2", got)
	}
	ix.add(base, doms[4])
	days := 0
	ix.eachBucket(base, base.AddDays(8), func(simtime.Day, map[uint64]*model.Domain) { days++ })
	if days != 3 {
		t.Fatalf("eachBucket visited %d days, want 3", days)
	}

	// Removing from an unknown day is a no-op.
	ix.remove(base.AddDays(99), 1)
}

// TestEachCollectThenAct pins down the documented safe pattern for Each's
// locking contract: collect what to change while iterating (the read lock is
// held, so no Store calls from fn), apply after Each returns.
func TestEachCollectThenAct(t *testing.T) {
	s, clock := testStore(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Create(fmt.Sprintf("collect%d.com", i), 1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	var due []string
	s.Each(func(d *model.Domain) bool {
		if d.Status == model.StatusActive {
			due = append(due, d.Name)
		}
		return true
	})
	for _, name := range due {
		if err := s.MarkRedemption(name, clock.Now()); err != nil {
			t.Fatalf("apply after Each: %v", err)
		}
	}
	if got := s.StatusCounts()[model.StatusRedemption]; got != 10 {
		t.Fatalf("redemption count = %d, want 10", got)
	}
}

// TestStatusCountsStayConsistent cross-checks the incremental per-status
// counters against a fresh full count after a burst of mixed mutations.
func TestStatusCountsStayConsistent(t *testing.T) {
	s, clock := testStore(t)
	NewLifecycle(s, DefaultLifecycleConfig())
	day := simtime.DayOf(clock.Now())
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("churn%02d.com", i)
		if _, err := s.Create(name, 1000, 1); err != nil {
			t.Fatal(err)
		}
		switch i % 4 {
		case 1:
			s.MarkRedemption(name, clock.Now())
		case 2:
			s.MarkRedemption(name, clock.Now())
			s.MarkPendingDelete(name, time.Time{}, day.AddDays(i%5))
		case 3:
			s.MarkRedemption(name, clock.Now())
			s.MarkPendingDelete(name, time.Time{}, day)
			if _, err := s.purge(name, day.At(19, 0, 0), i); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := make(map[model.Status]int)
	s.Each(func(d *model.Domain) bool {
		want[d.Status]++
		return true
	})
	got := s.StatusCounts()
	if len(got) != len(want) {
		t.Fatalf("StatusCounts = %v, want %v", got, want)
	}
	for st, n := range want {
		if got[st] != n {
			t.Fatalf("StatusCounts[%v] = %d, want %d", st, got[st], n)
		}
	}
	if n := indexSize(s); n != s.Count() {
		t.Fatalf("index holds %d entries, store holds %d", n, s.Count())
	}
}

// sweepWorld populates a store that makes clone-per-scan regressions loud:
// storeSize mostly-idle registrations (nothing due today) plus a small
// pending-delete cohort spread over the published window.
func sweepWorld(tb testing.TB, storeSize, pendingPerDay int) (*Store, *Lifecycle, *DropRunner, simtime.Day) {
	tb.Helper()
	today := simtime.Day{Year: 2018, Month: time.March, Dom: 1}
	clock := simtime.NewSimClock(today.At(12, 0, 0))
	s := NewStore(clock)
	for r := 0; r < 10; r++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + r, Name: fmt.Sprintf("R%d", r)})
	}
	lc := NewLifecycle(s, DefaultLifecycleConfig())

	pending := 5 * pendingPerDay
	for i := 0; i < storeSize; i++ {
		name := fmt.Sprintf("sweep%07d.com", i)
		sponsor := 1000 + i%10
		var err error
		if i < pending {
			// pendingDelete, deletion day spread over [today, today+5).
			updated := today.AddDays(-35).At(6, 30, i%60)
			_, err = s.SeedAt(name, sponsor, updated.AddDate(-2, 0, 0), updated,
				updated.AddDate(0, 0, -30), model.StatusPendingDelete, today.AddDays(i%5))
		} else {
			// Active with a future expiry: never due during the benchmark,
			// which is exactly the population a daily sweep must not touch.
			expiry := today.AddDays(30+i%300).At(8, 0, i%60)
			_, err = s.SeedAt(name, sponsor, expiry.AddDate(-1, 0, 0), expiry.AddDate(-1, 0, 0),
				expiry, model.StatusActive, simtime.Day{})
		}
		if err != nil {
			tb.Fatal(err)
		}
	}
	return s, lc, NewDropRunner(s, DefaultDropConfig()), today
}

// TestDailySweepAllocBounds is the allocation-regression guard: on a
// populated store the three daily sweeps must allocate proportionally to the
// due work (here ≤ a few hundred pending domains), never to the store. A
// return of the one-clone-per-domain-per-scan behaviour would blow these
// bounds by two orders of magnitude.
func TestDailySweepAllocBounds(t *testing.T) {
	const storeSize, perDay = 20000, 60
	s, lc, runner, today := sweepWorld(t, storeSize, perDay)
	now := today.At(12, 0, 0)

	// Nothing is due at noon, so Tick only walks (empty) due buckets — and,
	// critically, does not mutate, so every AllocsPerRun round sees the same
	// store.
	if n := lc.Tick(now); n != 0 {
		t.Fatalf("Tick transitioned %d domains; the alloc probe needs an idle store", n)
	}
	checks := []struct {
		name  string
		bound float64
		fn    func()
	}{
		{"Tick", 16, func() { lc.Tick(now) }},
		{"BuildQueue", 16, func() { runner.BuildQueue(today) }},
		// PendingDeletions clones what it returns (public API), so its
		// bound scales with the 5-day window volume plus bookkeeping.
		{"PendingDeletions", float64(5*perDay) + 32, func() { s.PendingDeletions(today, 5) }},
	}
	for _, c := range checks {
		if got := testing.AllocsPerRun(5, c.fn); got > c.bound {
			t.Errorf("%s allocates %.0f per run on a %d-domain store, want <= %.0f", c.name, got, storeSize, c.bound)
		}
	}
}
