package registry

import (
	"fmt"
	"sort"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
	"dropzero/internal/zone"
)

// This file is the parallel recovery seam: sharded snapshot capture, a
// restore API whose pieces are safe for concurrent use, and a per-shard
// replay entry point. The journal's v2 snapshot codec encodes one section
// per shard and its pipelined WAL replayer partitions records by the same
// name hash the live store routes with, so every recovery worker locks
// exactly the shard it is filling. The flat SnapshotState API remains (the
// v1 gob format and the replay differential tests speak it); it is now a
// thin adapter over the sharded form.

// ShardedSnapshot is a full copy of the store's durable state with the
// registrations still grouped by the capturing store's shard index — the
// shape the parallel snapshot codec wants: one independently encodable
// (and restorable) section per shard. Shards has ShardCount() entries;
// entry order within a shard is map-iteration order, which no consumer may
// rely on (restore re-routes every domain by name hash anyway).
type ShardedSnapshot struct {
	Gen        uint64
	NextID     uint64
	Registrars []model.Registrar
	Shards     [][]SnapshotDomain
	Deletions  map[simtime.Day][]model.DeletionEvent
	// Zones are the zones installed beyond the implicit default one (see
	// SnapshotState.Zones).
	Zones []zone.Config
}

// DomainCount sums the per-shard registration counts.
func (st *ShardedSnapshot) DomainCount() int {
	n := 0
	for _, sh := range st.Shards {
		n += len(sh)
	}
	return n
}

// Flatten converts to the flat SnapshotState shape (shard sections
// concatenated in index order), for the v1 snapshot writer and tests.
func (st *ShardedSnapshot) Flatten() SnapshotState {
	flat := SnapshotState{
		Gen:        st.Gen,
		NextID:     st.NextID,
		Registrars: st.Registrars,
		Deletions:  st.Deletions,
		Zones:      st.Zones,
		Domains:    make([]SnapshotDomain, 0, st.DomainCount()),
	}
	for _, sh := range st.Shards {
		flat.Domains = append(flat.Domains, sh...)
	}
	return flat
}

// CaptureSnapshotSharded is CaptureSnapshot keeping the per-shard grouping.
// Same consistency contract: the copy visits shards one at a time under
// read locks and is only consistent if the caller's generation bracketing
// proves no mutation committed during it.
func (s *Store) CaptureSnapshotSharded() ShardedSnapshot {
	st := ShardedSnapshot{
		Registrars: s.Registrars(),
		Shards:     make([][]SnapshotDomain, len(s.shards)),
		Deletions:  make(map[simtime.Day][]model.DeletionEvent),
		Zones:      s.ExtraZones(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sec := make([]SnapshotDomain, 0, len(sh.domains))
		for name, d := range sh.domains {
			sec = append(sec, SnapshotDomain{Domain: *d, AuthInfo: sh.authInfo[name]})
		}
		sh.mu.RUnlock()
		st.Shards[i] = sec
	}
	s.delMu.Lock()
	for day, evs := range s.deletions {
		st.Deletions[day] = append([]model.DeletionEvent(nil), evs...)
	}
	s.delMu.Unlock()
	st.NextID = s.nextID.Load()
	st.Gen = s.gen.Load()
	return st
}

// CaptureSnapshotShardedQuiesced is CaptureSnapshotQuiesced keeping the
// per-shard grouping; see that method for the quiesce and lock-order
// argument.
func (s *Store) CaptureSnapshotShardedQuiesced(walSeq func() uint64) (ShardedSnapshot, uint64) {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	for i := range s.shards {
		s.shards[i].mu.RLock()
		defer s.shards[i].mu.RUnlock()
	}
	st := ShardedSnapshot{
		Registrars: s.registrarsLocked(),
		Shards:     make([][]SnapshotDomain, len(s.shards)),
		Deletions:  make(map[simtime.Day][]model.DeletionEvent),
		Zones:      s.ExtraZones(),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sec := make([]SnapshotDomain, 0, len(sh.domains))
		for name, d := range sh.domains {
			sec = append(sec, SnapshotDomain{Domain: *d, AuthInfo: sh.authInfo[name]})
		}
		st.Shards[i] = sec
	}
	s.delMu.Lock()
	for day, evs := range s.deletions {
		st.Deletions[day] = append([]model.DeletionEvent(nil), evs...)
	}
	s.delMu.Unlock()
	st.NextID = s.nextID.Load()
	st.Gen = s.gen.Load()
	return st, walSeq()
}

// RestoreRegistrars installs the registrar table during recovery, replacing
// nothing (the store is empty). Call once, before serving.
func (s *Store) RestoreRegistrars(rs []model.Registrar) {
	s.regMu.Lock()
	for _, r := range rs {
		s.registrars[r.IANAID] = r
	}
	s.regMu.Unlock()
}

// InstallRestoredDomains loads one batch of snapshot registrations into a
// store under recovery. It is safe for concurrent use — parallel restore
// workers each call it with their own decoded section — because it groups
// the batch by the *receiving* store's name hash and takes each shard's
// write lock once per group. The writer's shard layout is irrelevant: a
// snapshot captured at one shard count restores correctly at any other.
// Duplicate names (within the batch or across batches) mean the snapshot is
// not a faithful store copy and fail loudly.
func (s *Store) InstallRestoredDomains(ds []SnapshotDomain) error {
	groups := make(map[uint64][]int)
	for i := range ds {
		si := s.shardIndex(ds[i].Domain.Name)
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		sh := &s.shards[si]
		sh.mu.Lock()
		for _, i := range idxs {
			d := ds[i].Domain
			if _, taken := sh.domains[d.Name]; taken {
				sh.mu.Unlock()
				return fmt.Errorf("registry: restore: %w: %q", ErrExists, d.Name)
			}
			c := d
			sh.domains[d.Name] = &c
			sh.byID[c.ID] = &c
			if ds[i].AuthInfo != "" {
				sh.authInfo[d.Name] = ds[i].AuthInfo
			}
			sh.dueAdd(&c)
		}
		sh.mu.Unlock()
	}
	return nil
}

// MergeRestoredDeletions appends snapshot deletion-archive days into the
// store. Safe for concurrent use (the archive lock serialises); each day's
// events must arrive in archive order within one call, and a given day must
// come from a single caller (the v2 codec keeps the whole archive in one
// section, so this holds trivially).
func (s *Store) MergeRestoredDeletions(dels map[simtime.Day][]model.DeletionEvent) {
	s.delMu.Lock()
	for day, evs := range dels {
		s.deletions[day] = append(s.deletions[day], evs...)
	}
	s.delMu.Unlock()
}

// FinishRestore seals a restore: installs the ID allocator and generation
// counter captured with the snapshot. Call after every InstallRestoredDomains
// worker has returned and before WAL replay starts.
func (s *Store) FinishRestore(gen, nextID uint64) {
	s.nextID.Store(nextID)
	s.gen.Store(gen)
}

// SeqMutation pairs a replayed mutation with its WAL sequence number, so
// per-shard appliers can reassemble globally ordered artefacts (the
// deletion archive) after applying out of global order.
type SeqMutation struct {
	Seq uint64
	M   Mutation
}

// ReplayPurge is one Drop deletion produced by replay, tagged with the WAL
// position of its purge record.
type ReplayPurge struct {
	Seq uint64
	Ev  model.DeletionEvent
}

// ShardIndexFor exposes the store's name-to-shard routing for replay
// partitioning: the parallel replayer must group records exactly the way
// the store's own mutators serialised them, and this is that function.
func (s *Store) ShardIndexFor(name string) int {
	return int(s.shardIndex(name))
}

// ApplyShardSequence replays a run of domain mutations that all route to
// shard si (per ShardIndexFor — the caller owns that invariant), in
// ascending sequence order, under one acquisition of that shard's write
// lock. It is the parallel-replay sibling of ApplyBatch's per-shard groups:
// concurrent callers touching *different* shards reproduce sequential
// replay exactly, because every pair of same-name records shares a shard
// and therefore a caller, and the generation counter advances by the run
// length regardless of interleaving. Purge events are returned with their
// sequence numbers; the caller rebuilds the deletion archive in global
// order with AppendReplayPurges once replay completes. MutAddRegistrar and
// MutAddZone are rejected — those records commit under their own leaf locks
// and act as replay barriers, applied inline via Apply.
//
// An error leaves the run partially applied (generation covers the applied
// prefix); as with ApplyBatch, errors mean the log is not a faithful
// history and the caller must discard the store.
func (s *Store) ApplyShardSequence(si int, ms []SeqMutation) ([]ReplayPurge, error) {
	if len(ms) == 0 {
		return nil, nil
	}
	if si < 0 || si >= len(s.shards) {
		return nil, fmt.Errorf("registry: replay: shard index %d out of range", si)
	}
	var (
		purges  []ReplayPurge
		applied int
		err     error
	)
	sh := &s.shards[si]
	sh.mu.Lock()
	for i := range ms {
		m := &ms[i].M
		if m.Kind == MutAddRegistrar || m.Kind == MutAddZone {
			err = fmt.Errorf("registry: replay seq %d: %s in shard sequence", ms[i].Seq, m.Kind)
			break
		}
		ev, isPurge, aerr := s.applyDomainLocked(sh, m)
		if aerr != nil {
			err = aerr
			break
		}
		if isPurge {
			purges = append(purges, ReplayPurge{Seq: ms[i].Seq, Ev: ev})
		}
		applied++
	}
	s.gen.Add(uint64(applied))
	sh.mu.Unlock()
	return purges, err
}

// AppendReplayPurges rebuilds the deletion archive from the purge events
// the per-shard appliers collected: sorted by WAL sequence number, the
// events land in exactly the order sequential replay would have appended
// them (the archive's per-day rank order is observable through dropscope).
// Call once, after every applier has finished.
func (s *Store) AppendReplayPurges(ps []ReplayPurge) {
	sort.Slice(ps, func(a, b int) bool { return ps[a].Seq < ps[b].Seq })
	s.delMu.Lock()
	for _, p := range ps {
		day := simtime.DayOf(p.Ev.Time)
		s.deletions[day] = append(s.deletions[day], p.Ev)
	}
	s.delMu.Unlock()
}
