package registry

import (
	"math/rand"
	"sort"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// LifecycleConfig parameterises the post-expiration pipeline. The defaults
// follow ICANN policy for .com/.net: an auto-renew grace period during which
// the registrar decides the domain's fate (0–45 days, registrar-specific),
// a 30-day redemption period, and 5 days of pendingDelete.
type LifecycleConfig struct {
	// RedemptionDays is the length of the redemption period.
	RedemptionDays int
	// PendingDeleteDays is the length of the pendingDelete period; the
	// domain is purged during the Drop on the day this period ends.
	PendingDeleteDays int
	// GraceDays maps a registrar IANA ID to the number of days after
	// expiration that registrar waits before deleting non-renewed domains.
	// Registrars absent from the map use DefaultGraceDays. The spread in
	// these values is what makes deletion dates diverge from expiration
	// dates (the paper's earlier "WHOIS Lost in Translation" finding).
	GraceDays map[int]int
	// DefaultGraceDays is used for registrars not in GraceDays.
	DefaultGraceDays int
	// BatchHour/BatchMinute position each registrar's daily deletion batch;
	// the second is derived from the registrar ID so that one registrar's
	// batch lands on one timestamp (producing the large last-updated ties
	// the paper had to break with domain IDs), while different registrars
	// interleave.
	BatchHour, BatchMinute int
}

// DefaultLifecycleConfig returns the ICANN-policy defaults.
func DefaultLifecycleConfig() LifecycleConfig {
	return LifecycleConfig{
		RedemptionDays:    30,
		PendingDeleteDays: 5,
		DefaultGraceDays:  35,
		BatchHour:         6,
		BatchMinute:       30,
	}
}

func (c LifecycleConfig) graceDays(registrarID int) int {
	if d, ok := c.GraceDays[registrarID]; ok {
		return d
	}
	return c.DefaultGraceDays
}

// BatchInstant returns the second at which registrarID's deletion batch runs
// on day. Spacing registrars a few seconds apart mirrors the observation that
// many registrars update large batches of domains at the same time.
func (c LifecycleConfig) BatchInstant(day simtime.Day, registrarID int) time.Time {
	// splitmix64-style scramble: batch instants must not be monotonic in
	// the IANA ID, or sorting by registrar ID would accidentally reproduce
	// the update-time order and the §4.1 order search could not tell the
	// two apart.
	h := uint64(registrarID) + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	extraMin := int(h % 97)
	sec := int((h / 97) % 60)
	return day.At(c.BatchHour, c.BatchMinute, 0).Add(time.Duration(extraMin)*time.Minute + time.Duration(sec)*time.Second)
}

// Lifecycle advances domains through the expiration pipeline. It is driven
// once per simulated day (before the Drop) by the orchestrator, or on a
// timer when running against the real clock.
type Lifecycle struct {
	store *Store
	cfg   LifecycleConfig
}

// NewLifecycle returns a Lifecycle over store.
func NewLifecycle(store *Store, cfg LifecycleConfig) *Lifecycle {
	if cfg.RedemptionDays == 0 && cfg.PendingDeleteDays == 0 && cfg.DefaultGraceDays == 0 {
		cfg = DefaultLifecycleConfig()
	}
	return &Lifecycle{store: store, cfg: cfg}
}

// Config returns the active configuration.
func (l *Lifecycle) Config() LifecycleConfig { return l.cfg }

// Tick processes all state transitions due at now. It returns the number of
// transitions performed. Transitions are applied in a deterministic order
// (sorted by domain ID) so equal inputs give equal outputs.
func (l *Lifecycle) Tick(now time.Time) int {
	now = simtime.Trunc(now)
	day := simtime.DayOf(now)

	type change struct {
		d  *model.Domain
		fn func() error
	}
	var changes []change

	l.store.Each(func(d *model.Domain) bool {
		switch d.Status {
		case model.StatusActive:
			if !d.Expiry.After(now) {
				changes = append(changes, change{d, func() error {
					// Registry auto-renews at expiration; the registrar's
					// grace clock starts at the old expiry.
					return l.store.setState(d.Name, model.StatusAutoRenew, d.Expiry, simtime.Day{})
				}})
			}
		case model.StatusAutoRenew:
			graceEnd := d.Expiry.AddDate(0, 0, l.cfg.graceDays(d.RegistrarID))
			if !graceEnd.After(now) {
				batch := l.cfg.BatchInstant(day, d.RegistrarID)
				changes = append(changes, change{d, func() error {
					// Registrar deletes the domain: this is the "last
					// updated" instant that will drive the deletion order.
					return l.store.setState(d.Name, model.StatusRedemption, batch, simtime.Day{})
				}})
			}
		case model.StatusRedemption:
			redemptionEnd := d.Updated.AddDate(0, 0, l.cfg.RedemptionDays)
			if !redemptionEnd.After(now) {
				deleteDay := day.AddDays(l.cfg.PendingDeleteDays)
				changes = append(changes, change{d, func() error {
					return l.store.MarkPendingDelete(d.Name, time.Time{}, deleteDay)
				}})
			}
		}
		return true
	})

	sort.Slice(changes, func(i, j int) bool { return changes[i].d.ID < changes[j].d.ID })
	n := 0
	for _, c := range changes {
		if err := c.fn(); err == nil {
			n++
		}
	}
	return n
}

// SpreadGraceDays populates GraceDays with registrar-specific values in
// [minDays, maxDays], drawn deterministically from rng, for every registrar
// currently known to the store.
func SpreadGraceDays(cfg *LifecycleConfig, store *Store, minDays, maxDays int, rng *rand.Rand) {
	if cfg.GraceDays == nil {
		cfg.GraceDays = make(map[int]int)
	}
	for _, r := range store.Registrars() {
		cfg.GraceDays[r.IANAID] = minDays + rng.Intn(maxDays-minDays+1)
	}
}
