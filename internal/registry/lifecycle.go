package registry

import (
	"cmp"
	"math/rand"
	"slices"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
	"dropzero/internal/zone"
)

// LifecycleConfig parameterises the post-expiration pipeline. It lives in
// the zone package (each zone carries its own); the alias keeps the
// pre-federation registry API intact.
type LifecycleConfig = zone.LifecycleConfig

// DefaultLifecycleConfig returns the ICANN-policy defaults for .com/.net.
func DefaultLifecycleConfig() LifecycleConfig { return zone.DefaultLifecycleConfig() }

// Lifecycle advances domains through the expiration pipeline. It is driven
// once per simulated day (before the Drop) by the orchestrator, or on a
// timer when running against the real clock. A Lifecycle is scoped to one
// zone's TLD set; the legacy constructor scopes to the default .com/.net
// zone, which — on a store hosting only that zone — is every domain.
type Lifecycle struct {
	store *Store
	cfg   LifecycleConfig
	// scope is the zone's TLD membership set; nil means unscoped (legacy
	// single-zone stores, where filtering would only cost time).
	scope map[model.TLD]bool
}

// NewLifecycle returns a Lifecycle over store for the default zone. It
// installs the store's base due-day policy derived from cfg, so the store's
// per-state indexes bucket every default-zone domain on the exact day its
// next transition becomes due (other zones' TLDs keep their own lifecycle
// parameters). One store should have one active Lifecycle per zone;
// cfg.GraceDays must not be mutated afterwards except through
// SpreadGraceDays, which re-derives the policy (a bucket later than the true
// due day would delay transitions).
func NewLifecycle(store *Store, cfg LifecycleConfig) *Lifecycle {
	if cfg.RedemptionDays == 0 && cfg.PendingDeleteDays == 0 && cfg.DefaultGraceDays == 0 {
		cfg = DefaultLifecycleConfig()
	}
	store.setDuePolicy(duePolicy{
		redemptionDays:   cfg.RedemptionDays,
		graceDays:        cfg.GraceDays,
		defaultGraceDays: cfg.DefaultGraceDays,
	})
	var scope map[model.TLD]bool
	if len(store.ExtraZones()) > 0 {
		def := zone.Default()
		scope = def.TLDSet()
	}
	return &Lifecycle{store: store, cfg: cfg, scope: scope}
}

// NewZoneLifecycle returns a Lifecycle driving z's TLDs under z's own
// lifecycle config. z must already be installed in the store (AddZone); the
// per-TLD due-day parameters were installed then. The default zone's
// lifecycle still comes from NewLifecycle.
func NewZoneLifecycle(store *Store, z zone.Config) *Lifecycle {
	return &Lifecycle{store: store, cfg: z.Lifecycle, scope: z.TLDSet()}
}

// Config returns the active configuration.
func (l *Lifecycle) Config() LifecycleConfig { return l.cfg }

// inScope reports whether d belongs to this lifecycle's zone.
func (l *Lifecycle) inScope(d *model.Domain) bool {
	return l.scope == nil || l.scope[d.TLD]
}

// change is one planned lifecycle transition: everything the apply phase
// needs, derived once during the sweep — no deferred closure re-deriving
// state per candidate, and no Domain clone per examined domain.
type change struct {
	id      uint64
	name    string
	to      model.Status
	updated time.Time   // zero = keep the current last-updated timestamp
	day     simtime.Day // DeleteDay when to == StatusPendingDelete
}

// Tick processes all state transitions due at now for this lifecycle's zone.
// It returns the number of transitions performed. Transitions are applied in
// a deterministic order (sorted by domain ID) so equal inputs give equal
// outputs.
//
// Tick walks only the due-day index buckets at or before now's day — the
// work is proportional to the domains actually due (plus same-day
// candidates whose exact instant has not struck yet), not to the store.
func (l *Lifecycle) Tick(now time.Time) int {
	if l.store.useScan() {
		return l.tickScan(now)
	}
	now = simtime.Trunc(now)
	day := simtime.DayOf(now)

	var changes []change
	l.store.eachDueThrough(model.StatusActive, day, func(d *model.Domain) {
		if !l.inScope(d) {
			return
		}
		if !d.Expiry.After(now) {
			// Registry auto-renews at expiration; the registrar's grace
			// clock starts at the old expiry.
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusAutoRenew, updated: d.Expiry})
		}
	})
	l.store.eachDueThrough(model.StatusAutoRenew, day, func(d *model.Domain) {
		if !l.inScope(d) {
			return
		}
		graceEnd := d.Expiry.AddDate(0, 0, l.cfg.GraceDaysFor(d.RegistrarID))
		if !graceEnd.After(now) {
			// Registrar deletes the domain: the batch instant is the "last
			// updated" timestamp that will drive the deletion order.
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusRedemption, updated: l.cfg.BatchInstant(day, d.RegistrarID)})
		}
	})
	l.store.eachDueThrough(model.StatusRedemption, day, func(d *model.Domain) {
		if !l.inScope(d) {
			return
		}
		if !d.Updated.AddDate(0, 0, l.cfg.RedemptionDays).After(now) {
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusPendingDelete, day: day.AddDays(l.cfg.PendingDeleteDays)})
		}
	})

	slices.SortFunc(changes, func(a, b change) int { return cmp.Compare(a.id, b.id) })
	n := 0
	for _, c := range changes {
		var err error
		if c.to == model.StatusPendingDelete {
			err = l.store.MarkPendingDelete(c.name, time.Time{}, c.day)
		} else {
			err = l.store.setState(c.name, c.to, c.updated, simtime.Day{})
		}
		if err == nil {
			n++
		}
	}
	return n
}

// SpreadGraceDays populates GraceDays with registrar-specific values in
// [minDays, maxDays], drawn deterministically from rng, for every registrar
// currently known to the store. It re-derives the store's due-day policy so
// already-indexed autoRenew domains move to their new grace-end buckets —
// this is the one supported way to change GraceDays after NewLifecycle.
func SpreadGraceDays(cfg *LifecycleConfig, store *Store, minDays, maxDays int, rng *rand.Rand) {
	if cfg.GraceDays == nil {
		cfg.GraceDays = make(map[int]int)
	}
	for _, r := range store.Registrars() {
		cfg.GraceDays[r.IANAID] = minDays + rng.Intn(maxDays-minDays+1)
	}
	store.setDuePolicy(duePolicy{
		redemptionDays:   cfg.RedemptionDays,
		graceDays:        cfg.GraceDays,
		defaultGraceDays: cfg.DefaultGraceDays,
	})
}
