package registry

import (
	"cmp"
	"math/rand"
	"slices"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// LifecycleConfig parameterises the post-expiration pipeline. The defaults
// follow ICANN policy for .com/.net: an auto-renew grace period during which
// the registrar decides the domain's fate (0–45 days, registrar-specific),
// a 30-day redemption period, and 5 days of pendingDelete.
type LifecycleConfig struct {
	// RedemptionDays is the length of the redemption period.
	RedemptionDays int
	// PendingDeleteDays is the length of the pendingDelete period; the
	// domain is purged during the Drop on the day this period ends.
	PendingDeleteDays int
	// GraceDays maps a registrar IANA ID to the number of days after
	// expiration that registrar waits before deleting non-renewed domains.
	// Registrars absent from the map use DefaultGraceDays. The spread in
	// these values is what makes deletion dates diverge from expiration
	// dates (the paper's earlier "WHOIS Lost in Translation" finding).
	GraceDays map[int]int
	// DefaultGraceDays is used for registrars not in GraceDays.
	DefaultGraceDays int
	// BatchHour/BatchMinute position each registrar's daily deletion batch;
	// the second is derived from the registrar ID so that one registrar's
	// batch lands on one timestamp (producing the large last-updated ties
	// the paper had to break with domain IDs), while different registrars
	// interleave.
	BatchHour, BatchMinute int
}

// DefaultLifecycleConfig returns the ICANN-policy defaults.
func DefaultLifecycleConfig() LifecycleConfig {
	return LifecycleConfig{
		RedemptionDays:    30,
		PendingDeleteDays: 5,
		DefaultGraceDays:  35,
		BatchHour:         6,
		BatchMinute:       30,
	}
}

func (c LifecycleConfig) graceDays(registrarID int) int {
	if d, ok := c.GraceDays[registrarID]; ok {
		return d
	}
	return c.DefaultGraceDays
}

// BatchInstant returns the second at which registrarID's deletion batch runs
// on day. Spacing registrars a few seconds apart mirrors the observation that
// many registrars update large batches of domains at the same time.
func (c LifecycleConfig) BatchInstant(day simtime.Day, registrarID int) time.Time {
	// splitmix64-style scramble: batch instants must not be monotonic in
	// the IANA ID, or sorting by registrar ID would accidentally reproduce
	// the update-time order and the §4.1 order search could not tell the
	// two apart.
	h := uint64(registrarID) + 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	h ^= h >> 31
	extraMin := int(h % 97)
	sec := int((h / 97) % 60)
	return day.At(c.BatchHour, c.BatchMinute, 0).Add(time.Duration(extraMin)*time.Minute + time.Duration(sec)*time.Second)
}

// Lifecycle advances domains through the expiration pipeline. It is driven
// once per simulated day (before the Drop) by the orchestrator, or on a
// timer when running against the real clock.
type Lifecycle struct {
	store *Store
	cfg   LifecycleConfig
}

// NewLifecycle returns a Lifecycle over store. It installs the store's
// due-day policy derived from cfg, so the store's per-state indexes bucket
// every domain on the exact day its next transition becomes due. One store
// should have one active Lifecycle; cfg.GraceDays must not be mutated
// afterwards except through SpreadGraceDays, which re-derives the policy (a
// bucket later than the true due day would delay transitions).
func NewLifecycle(store *Store, cfg LifecycleConfig) *Lifecycle {
	if cfg.RedemptionDays == 0 && cfg.PendingDeleteDays == 0 && cfg.DefaultGraceDays == 0 {
		cfg = DefaultLifecycleConfig()
	}
	store.setDuePolicy(duePolicy{
		redemptionDays:   cfg.RedemptionDays,
		graceDays:        cfg.GraceDays,
		defaultGraceDays: cfg.DefaultGraceDays,
	})
	return &Lifecycle{store: store, cfg: cfg}
}

// Config returns the active configuration.
func (l *Lifecycle) Config() LifecycleConfig { return l.cfg }

// change is one planned lifecycle transition: everything the apply phase
// needs, derived once during the sweep — no deferred closure re-deriving
// state per candidate, and no Domain clone per examined domain.
type change struct {
	id      uint64
	name    string
	to      model.Status
	updated time.Time   // zero = keep the current last-updated timestamp
	day     simtime.Day // DeleteDay when to == StatusPendingDelete
}

// Tick processes all state transitions due at now. It returns the number of
// transitions performed. Transitions are applied in a deterministic order
// (sorted by domain ID) so equal inputs give equal outputs.
//
// Tick walks only the due-day index buckets at or before now's day — the
// work is proportional to the domains actually due (plus same-day
// candidates whose exact instant has not struck yet), not to the store.
func (l *Lifecycle) Tick(now time.Time) int {
	if l.store.useScan() {
		return l.tickScan(now)
	}
	now = simtime.Trunc(now)
	day := simtime.DayOf(now)

	var changes []change
	l.store.eachDueThrough(model.StatusActive, day, func(d *model.Domain) {
		if !d.Expiry.After(now) {
			// Registry auto-renews at expiration; the registrar's grace
			// clock starts at the old expiry.
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusAutoRenew, updated: d.Expiry})
		}
	})
	l.store.eachDueThrough(model.StatusAutoRenew, day, func(d *model.Domain) {
		graceEnd := d.Expiry.AddDate(0, 0, l.cfg.graceDays(d.RegistrarID))
		if !graceEnd.After(now) {
			// Registrar deletes the domain: the batch instant is the "last
			// updated" timestamp that will drive the deletion order.
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusRedemption, updated: l.cfg.BatchInstant(day, d.RegistrarID)})
		}
	})
	l.store.eachDueThrough(model.StatusRedemption, day, func(d *model.Domain) {
		if !d.Updated.AddDate(0, 0, l.cfg.RedemptionDays).After(now) {
			changes = append(changes, change{id: d.ID, name: d.Name, to: model.StatusPendingDelete, day: day.AddDays(l.cfg.PendingDeleteDays)})
		}
	})

	slices.SortFunc(changes, func(a, b change) int { return cmp.Compare(a.id, b.id) })
	n := 0
	for _, c := range changes {
		var err error
		if c.to == model.StatusPendingDelete {
			err = l.store.MarkPendingDelete(c.name, time.Time{}, c.day)
		} else {
			err = l.store.setState(c.name, c.to, c.updated, simtime.Day{})
		}
		if err == nil {
			n++
		}
	}
	return n
}

// SpreadGraceDays populates GraceDays with registrar-specific values in
// [minDays, maxDays], drawn deterministically from rng, for every registrar
// currently known to the store. It re-derives the store's due-day policy so
// already-indexed autoRenew domains move to their new grace-end buckets —
// this is the one supported way to change GraceDays after NewLifecycle.
func SpreadGraceDays(cfg *LifecycleConfig, store *Store, minDays, maxDays int, rng *rand.Rand) {
	if cfg.GraceDays == nil {
		cfg.GraceDays = make(map[int]int)
	}
	for _, r := range store.Registrars() {
		cfg.GraceDays[r.IANAID] = minDays + rng.Intn(maxDays-minDays+1)
	}
	store.setDuePolicy(duePolicy{
		redemptionDays:   cfg.RedemptionDays,
		graceDays:        cfg.GraceDays,
		defaultGraceDays: cfg.DefaultGraceDays,
	})
}
