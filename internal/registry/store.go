// Package registry implements the Verisign-like registry substrate: an
// in-memory domain database with first-come-first-served creation, the
// post-expiration lifecycle, and the daily Drop process that deletes
// pending-delete domains in a deterministic order.
//
// The paper's measurement model only relies on properties of the real
// registry that this package reproduces faithfully: second-precision
// Created/Updated/Expiry timestamps, strictly increasing domain IDs, a
// deletion order keyed on (Updated, ID) across .com and .net combined, and
// deletions paced over roughly an hour starting at 19:00 UTC.
package registry

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// Sentinel errors returned by Store operations. Callers (the EPP server in
// particular) branch on these to map them to protocol result codes.
var (
	ErrExists           = errors.New("registry: object exists")
	ErrNotFound         = errors.New("registry: object does not exist")
	ErrBadName          = errors.New("registry: invalid domain name")
	ErrUnknownTLD       = errors.New("registry: TLD not operated by this registry")
	ErrUnknownRegistrar = errors.New("registry: unknown registrar")
	ErrNotPendingDelete = errors.New("registry: domain is not in pendingDelete")
	ErrWrongRegistrar   = errors.New("registry: domain sponsored by another registrar")
	ErrBadAuthInfo      = errors.New("registry: authorization information invalid")
	ErrStatusProhibits  = errors.New("registry: object status prohibits operation")
)

// Observer receives registry lifecycle events. Implementations must not
// call back into the Store synchronously from the handler if they take their
// own locks that Store methods can contend on; the EPP server's poll queue
// is the canonical consumer.
type Observer interface {
	// DomainPurged fires when a Drop deletion removes a registration;
	// registrarID is the sponsor that lost the name.
	DomainPurged(ev model.DeletionEvent, registrarID int)
	// DomainTransitioned fires on lifecycle state changes.
	DomainTransitioned(name string, registrarID int, from, to model.Status)
	// DomainTransferred fires when a registration changes sponsor; the
	// losing registrar is the natural poll-message recipient.
	DomainTransferred(name string, losingID, gainingID int)
}

// Store is the registry database. All methods are safe for concurrent use.
type Store struct {
	clock simtime.Clock

	// gen counts committed mutations of publicly observable state. Every
	// successful mutator bumps it exactly once, inside its write-lock
	// critical section; failed operations leave it untouched. Response
	// caches in the serving layers (RDAP, WHOIS, dropscope) key rendered
	// bytes by this counter: a cached body is valid exactly while
	// Generation() still returns the value it was rendered under. Readable
	// lock-free via Generation().
	gen atomic.Uint64

	mu         sync.RWMutex
	domains    map[string]*model.Domain // active registrations by name
	byID       map[uint64]*model.Domain
	registrars map[int]model.Registrar
	nextID     uint64
	observer   Observer
	// authInfo holds each registration's transfer authorisation code. Never
	// exposed through RDAP/WHOIS; only the sponsor may read it.
	authInfo map[string]string

	// deletions is the ground-truth archive of Drop deletions, per day.
	deletions map[simtime.Day][]model.DeletionEvent

	// policy computes each registration's due day. The zero value anchors
	// buckets at the earliest plausible day (always safe); NewLifecycle and
	// SpreadGraceDays install the exact policy for the active config.
	policy duePolicy
	// due is the tentpole index: per lifecycle state, every live
	// registration bucketed by the UTC day its next transition becomes due.
	// Maintained incrementally by every mutator, it makes the daily sweeps
	// (Lifecycle.Tick, DropRunner.BuildQueue, PendingDeletions) O(due work)
	// instead of O(store).
	due [model.StatusDeleted]dueIndex
	// statusCount tallies live registrations per lifecycle state.
	statusCount [model.StatusDeleted + 1]int
	// scanEngine routes the daily sweeps through the retained full-scan
	// reference implementations (scanref.go) instead of the due indexes.
	// Differential tests and benchmark baselines only.
	scanEngine bool
}

// dueAdd indexes d under its current state and due day and bumps the status
// counter. The caller holds the write lock; every live domain is indexed
// exactly once.
func (s *Store) dueAdd(d *model.Domain) {
	if int(d.Status) < len(s.statusCount) {
		s.statusCount[d.Status]++
	}
	if int(d.Status) < len(s.due) {
		s.due[d.Status].add(s.policy.dueDay(d), d)
	}
}

// dueRemove un-indexes d. It must run *before* any field that feeds
// duePolicy.dueDay (Status, Expiry, Updated, RegistrarID, DeleteDay) is
// mutated, or the removal would look in the wrong bucket.
func (s *Store) dueRemove(d *model.Domain) {
	if int(d.Status) < len(s.statusCount) {
		s.statusCount[d.Status]--
	}
	if int(d.Status) < len(s.due) {
		s.due[d.Status].remove(s.policy.dueDay(d), d.ID)
	}
}

// setDuePolicy installs the due-day policy and rebuilds every index bucket
// under it — O(store), paid once when a Lifecycle is attached or its grace
// spread changes.
func (s *Store) setDuePolicy(p duePolicy) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.due {
		s.due[i] = dueIndex{}
	}
	s.policy = p
	for _, d := range s.domains {
		if int(d.Status) < len(s.due) {
			s.due[d.Status].add(p.dueDay(d), d)
		}
	}
}

// SetScanEngine routes Lifecycle.Tick, DropRunner.BuildQueue and
// PendingDeletions through the retained full-scan reference implementations
// instead of the due-day indexes. The indexes are still maintained, so the
// flag can be flipped at any time; both engines must produce byte-identical
// results (the differential tests assert exactly that). It exists for those
// tests and for benchmarking the pre-index baseline — production callers
// never need it.
func (s *Store) SetScanEngine(enabled bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.scanEngine = enabled
}

func (s *Store) useScan() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.scanEngine
}

// Generation returns the store's mutation counter without taking any lock.
// It increases by (at least) one for every committed mutation of observable
// state — domain creation, transfer, touch, renewal, lifecycle transition,
// purge, registrar accreditation — and never decreases or repeats.
//
// Cache discipline: read the generation, render the response, then read the
// generation again; install the body into a cache only when the two reads
// match (the render then reflects exactly that generation's state, because
// every bump happens inside the mutator's write-lock critical section, which
// cannot overlap the render's read lock). Serve a cached body only while
// Generation() still equals the generation it was installed under.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// bumpGen records a committed mutation. Callers hold the write lock.
func (s *Store) bumpGen() { s.gen.Add(1) }

// NewStore returns an empty Store reading time from clock.
func NewStore(clock simtime.Clock) *Store {
	return &Store{
		clock:      clock,
		domains:    make(map[string]*model.Domain),
		byID:       make(map[uint64]*model.Domain),
		registrars: make(map[int]model.Registrar),
		nextID:     1,
		authInfo:   make(map[string]string),
		deletions:  make(map[simtime.Day][]model.DeletionEvent),
	}
}

// SetObserver installs the event consumer; pass nil to remove it. Events
// are delivered synchronously, after the store's own state change commits.
func (s *Store) SetObserver(o Observer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.observer = o
}

// AddRegistrar registers an accreditation. Creating or updating domains under
// an unknown IANA ID fails.
func (s *Store) AddRegistrar(r model.Registrar) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.registrars[r.IANAID] = r
	s.bumpGen()
}

// Registrar looks up an accreditation by IANA ID.
func (s *Store) Registrar(ianaID int) (model.Registrar, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.registrars[ianaID]
	return r, ok
}

// Registrars returns all accreditations, sorted by IANA ID.
func (s *Store) Registrars() []model.Registrar {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]model.Registrar, 0, len(s.registrars))
	for _, r := range s.registrars {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b model.Registrar) int { return cmp.Compare(a.IANAID, b.IANAID) })
	return out
}

func splitName(name string) (label string, tld model.TLD, err error) {
	t, ok := model.TLDOf(name)
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrUnknownTLD, name)
	}
	label = name[:len(name)-len(t)-1]
	if label == "" || len(label) > 63 {
		return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return label, t, nil
}

// Available reports whether name could be created right now.
func (s *Store) Available(name string) (bool, error) {
	if _, _, err := splitName(name); err != nil {
		return false, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, taken := s.domains[name]
	return !taken, nil
}

// Create registers name to registrarID for termYears, timestamped with the
// store clock. It fails with ErrExists if the name is taken in any lifecycle
// state — names in pendingDelete are not re-registrable until purged by the
// Drop, which is exactly the scarcity drop-catching competes over.
func (s *Store) Create(name string, registrarID int, termYears int) (*model.Domain, error) {
	return s.CreateAt(name, registrarID, termYears, s.clock.Now())
}

// CreateAt is Create with an explicit creation instant; the simulation driver
// uses it to materialise claims resolved during a Drop at their exact
// re-registration times. The instant is truncated to whole seconds.
func (s *Store) CreateAt(name string, registrarID int, termYears int, at time.Time) (*model.Domain, error) {
	_, tld, err := splitName(name)
	if err != nil {
		return nil, err
	}
	if termYears < 1 || termYears > 10 {
		return nil, fmt.Errorf("%w: term %d years", ErrBadName, termYears)
	}
	at = simtime.Trunc(at)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.registrars[registrarID]; !ok {
		return nil, fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, registrarID)
	}
	if _, taken := s.domains[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	d := &model.Domain{
		ID:          s.nextID,
		Name:        name,
		TLD:         tld,
		RegistrarID: registrarID,
		Created:     at,
		Updated:     at,
		Expiry:      at.AddDate(termYears, 0, 0),
		Status:      model.StatusActive,
	}
	s.nextID++
	s.domains[name] = d
	s.byID[d.ID] = d
	s.authInfo[name] = deriveAuthInfo(d.ID, name)
	s.dueAdd(d)
	s.bumpGen()
	return cloned(d), nil
}

// deriveAuthInfo mints a registration's transfer code (splitmix64 over the
// object ID and name, base-36 rendered). Deterministic so equal simulations
// stay equal; opaque enough that it cannot be guessed from public data.
func deriveAuthInfo(id uint64, name string) string {
	h := id + 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 12)
	for i := range buf {
		buf[i] = digits[h%36]
		h /= 36
	}
	return "AX-" + string(buf)
}

// AuthInfo returns the registration's transfer code; only the sponsoring
// registrar may read it.
func (s *Store) AuthInfo(name string, registrarID int) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.domains[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		return "", fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	return s.authInfo[name], nil
}

// Transfer moves an active registration to the gaining registrar when the
// presented authorisation code matches, rotating the code and recording the
// update (registrar transfers bump the "last updated" timestamp, another
// reason update times spread across registrations). The losing sponsor is
// notified through the observer.
func (s *Store) Transfer(name string, gainingID int, authInfo string) error {
	s.mu.Lock()
	d, ok := s.domains[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if _, ok := s.registrars[gainingID]; !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, gainingID)
	}
	if d.Status != model.StatusActive && d.Status != model.StatusAutoRenew {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q in %v", ErrStatusProhibits, name, d.Status)
	}
	if d.RegistrarID == gainingID {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q already sponsored by %d", ErrWrongRegistrar, name, gainingID)
	}
	if s.authInfo[name] != authInfo || authInfo == "" {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrBadAuthInfo, name)
	}
	losing := d.RegistrarID
	s.dueRemove(d)
	d.RegistrarID = gainingID
	d.Updated = simtime.Trunc(s.clock.Now())
	d.Status = model.StatusActive
	s.dueAdd(d)
	s.authInfo[name] = deriveAuthInfo(d.ID^0x5bf0, name)
	s.bumpGen()
	obs := s.observer
	s.mu.Unlock()
	if obs != nil {
		obs.DomainTransferred(name, losing, gainingID)
	}
	return nil
}

// Get returns a copy of the current registration of name.
func (s *Store) Get(name string) (*model.Domain, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return cloned(d), nil
}

// GetByID returns a copy of the registration with the given registry object
// ID, if it still exists.
func (s *Store) GetByID(id uint64) (*model.Domain, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
	}
	return cloned(d), nil
}

// Touch records a registrar-initiated update to the domain, setting the
// "last updated" timestamp that later determines the deletion order.
func (s *Store) Touch(name string, registrarID int) error {
	return s.TouchAt(name, registrarID, s.clock.Now())
}

// TouchAt is Touch at an explicit instant (truncated to seconds).
func (s *Store) TouchAt(name string, registrarID int, at time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		return fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	s.dueRemove(d)
	d.Updated = simtime.Trunc(at)
	s.dueAdd(d)
	s.bumpGen()
	return nil
}

// Renew extends the registration by years and records the update.
func (s *Store) Renew(name string, registrarID int, years int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.domains[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		return fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	now := simtime.Trunc(s.clock.Now())
	s.dueRemove(d)
	d.Expiry = d.Expiry.AddDate(years, 0, 0)
	d.Updated = now
	d.Status = model.StatusActive
	s.dueAdd(d)
	s.bumpGen()
	return nil
}

// setState transitions a domain's lifecycle state; used by the lifecycle
// engine and the population seeder (via the exported helpers below).
func (s *Store) setState(name string, st model.Status, updated time.Time, deleteDay simtime.Day) error {
	s.mu.Lock()
	d, ok := s.domains[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	from := d.Status
	s.dueRemove(d)
	d.Status = st
	if !updated.IsZero() {
		d.Updated = simtime.Trunc(updated)
	}
	d.DeleteDay = deleteDay
	s.dueAdd(d)
	s.bumpGen()
	obs := s.observer
	registrarID := d.RegistrarID
	s.mu.Unlock()
	if obs != nil && from != st {
		obs.DomainTransitioned(name, registrarID, from, st)
	}
	return nil
}

// MarkRedemption moves the domain into the redemption period following a
// registrar-initiated delete; at is the delete instant and becomes the
// domain's last-updated timestamp (the future deletion-order key).
func (s *Store) MarkRedemption(name string, at time.Time) error {
	return s.setState(name, model.StatusRedemption, at, simtime.Day{})
}

// MarkPendingDelete moves the domain into pendingDelete scheduled for
// deletion on day. updated is the registrar's delete instant (the future
// deletion-order key); pass the zero time to keep the current value.
func (s *Store) MarkPendingDelete(name string, updated time.Time, day simtime.Day) error {
	return s.setState(name, model.StatusPendingDelete, updated, day)
}

// PendingDeletions returns copies of all domains in pendingDelete whose
// scheduled deletion day falls within [from, from+days). Results are sorted
// by (DeleteDay, Name) so published pending-delete lists are stable — the
// paper observed that list order is *not* the deletion order (Figure 3, top).
//
// It walks only the due-day buckets inside the window: buckets arrive in
// ascending day order and every domain in a bucket shares that DeleteDay, so
// sorting each bucket's chunk by name yields the global (DeleteDay, Name)
// order without a full-result sort.
func (s *Store) PendingDeletions(from simtime.Day, days int) []*model.Domain {
	if s.useScan() {
		return s.pendingDeletionsScan(from, days)
	}
	end := from.AddDays(days)
	s.mu.RLock()
	defer s.mu.RUnlock()
	ix := &s.due[model.StatusPendingDelete]
	n := 0
	ix.eachBucket(from, end, func(_ simtime.Day, b map[uint64]*model.Domain) { n += len(b) })
	out := make([]*model.Domain, 0, n)
	ix.eachBucket(from, end, func(_ simtime.Day, b map[uint64]*model.Domain) {
		start := len(out)
		for _, d := range b {
			out = append(out, cloned(d))
		}
		chunk := out[start:]
		slices.SortFunc(chunk, func(a, b *model.Domain) int { return strings.Compare(a.Name, b.Name) })
	})
	return out
}

// purge removes the domain as part of a Drop, recording the ground-truth
// deletion event. The caller (DropRunner) holds the deletion order.
func (s *Store) purge(name string, at time.Time, rank int) (model.DeletionEvent, error) {
	s.mu.Lock()
	d, ok := s.domains[name]
	if !ok {
		s.mu.Unlock()
		return model.DeletionEvent{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.Status != model.StatusPendingDelete {
		status := d.Status
		s.mu.Unlock()
		return model.DeletionEvent{}, fmt.Errorf("%w: %q in %v", ErrNotPendingDelete, name, status)
	}
	ev := model.DeletionEvent{
		DomainID: d.ID,
		Name:     d.Name,
		TLD:      d.TLD,
		Time:     simtime.Trunc(at),
		Rank:     rank,
	}
	s.dueRemove(d)
	delete(s.domains, name)
	delete(s.byID, d.ID)
	delete(s.authInfo, name)
	day := simtime.DayOf(at)
	s.deletions[day] = append(s.deletions[day], ev)
	s.bumpGen()
	obs := s.observer
	registrarID := d.RegistrarID
	s.mu.Unlock()
	if obs != nil {
		obs.DomainPurged(ev, registrarID)
	}
	return ev, nil
}

// Deletions returns the ground-truth deletion events recorded on day, in
// deletion order. The measurement pipeline must not use these; they exist
// for the inference-accuracy ablation.
func (s *Store) Deletions(day simtime.Day) []model.DeletionEvent {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]model.DeletionEvent(nil), s.deletions[day]...)
}

// Count returns the number of live (non-purged) registrations.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.domains)
}

// StatusCounts tallies live registrations per lifecycle state. The tallies
// are maintained incrementally, so this is O(states), not O(store).
func (s *Store) StatusCounts() map[model.Status]int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[model.Status]int)
	for st, n := range s.statusCount {
		if n > 0 {
			out[model.Status(st)] = n
		}
	}
	return out
}

// Each calls fn for every live registration (copies, unspecified order) and
// stops early if fn returns false.
//
// Locking contract: the store's read lock is held for the whole sweep, so fn
// must not call any Store method — not even read-only ones like Get. A
// re-entrant RLock deadlocks as soon as a writer is queued behind the held
// lock. The safe pattern is collect-then-act: record what to change while
// iterating and apply it after Each returns (TestEachCollectThenAct pins
// this down). The copies are fn's to keep and mutate freely.
func (s *Store) Each(fn func(*model.Domain) bool) {
	s.each(func(d *model.Domain) bool { return fn(cloned(d)) })
}

// each is the clone-free internal iteration path: fn receives the store's
// live *model.Domain pointers with the read lock held. fn must treat them as
// strictly read-only, must not retain a pointer past its call, and must not
// call Store methods (same self-deadlock as Each). Hot sweeps use this (and
// the due-index visitors below) to avoid one Domain clone per domain per
// scan; everything that escapes the package keeps Each's cloning semantics.
func (s *Store) each(fn func(*model.Domain) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.domains {
		if !fn(d) {
			return
		}
	}
}

// eachDueThrough calls fn for every live registration in state st whose
// due-day bucket is on or before limit. Same read-only, lock-held contract
// as each; bucket order is map order, so callers sort deterministically.
func (s *Store) eachDueThrough(st model.Status, limit simtime.Day, fn func(*model.Domain)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(st) < len(s.due) {
		s.due[st].through(limit, fn)
	}
}

// pendingCountOn returns the number of pendingDelete registrations scheduled
// for deletion on day — the exact size of that day's Drop queue.
func (s *Store) pendingCountOn(day simtime.Day) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.due[model.StatusPendingDelete].count(day)
}

// eachPendingOn calls fn for every pendingDelete registration scheduled for
// deletion on day. Same read-only, lock-held contract as each.
func (s *Store) eachPendingOn(day simtime.Day, fn func(*model.Domain)) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.due[model.StatusPendingDelete].buckets[day] {
		fn(d)
	}
}

// SeedAt inserts a fully specified historical registration. The population
// seeder uses it to backfill domains that were created years before the
// simulation starts. IDs must be assigned through the store to preserve the
// "IDs increase with creation time" invariant, so SeedAt takes no ID; call it
// in creation-time order.
func (s *Store) SeedAt(name string, registrarID int, created, updated, expiry time.Time, st model.Status, deleteDay simtime.Day) (*model.Domain, error) {
	_, tld, err := splitName(name)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.registrars[registrarID]; !ok {
		return nil, fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, registrarID)
	}
	if _, taken := s.domains[name]; taken {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	d := &model.Domain{
		ID:          s.nextID,
		Name:        name,
		TLD:         tld,
		RegistrarID: registrarID,
		Created:     simtime.Trunc(created),
		Updated:     simtime.Trunc(updated),
		Expiry:      simtime.Trunc(expiry),
		Status:      st,
		DeleteDay:   deleteDay,
	}
	s.nextID++
	s.domains[name] = d
	s.byID[d.ID] = d
	s.dueAdd(d)
	s.bumpGen()
	return cloned(d), nil
}

func cloned(d *model.Domain) *model.Domain {
	c := *d
	return &c
}
