// Package registry implements the Verisign-like registry substrate: an
// in-memory domain database with first-come-first-served creation, the
// post-expiration lifecycle, and the daily Drop process that deletes
// pending-delete domains in a deterministic order.
//
// The paper's measurement model only relies on properties of the real
// registry that this package reproduces faithfully: second-precision
// Created/Updated/Expiry timestamps, strictly increasing domain IDs, a
// deletion order keyed on (Updated, ID) across .com and .net combined, and
// deletions paced over roughly an hour starting at 19:00 UTC.
package registry

import (
	"cmp"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// Sentinel errors returned by Store operations. Callers (the EPP server in
// particular) branch on these to map them to protocol result codes.
var (
	ErrExists           = errors.New("registry: object exists")
	ErrNotFound         = errors.New("registry: object does not exist")
	ErrBadName          = errors.New("registry: invalid domain name")
	ErrUnknownTLD       = errors.New("registry: TLD not operated by this registry")
	ErrUnknownRegistrar = errors.New("registry: unknown registrar")
	ErrNotPendingDelete = errors.New("registry: domain is not in pendingDelete")
	ErrWrongRegistrar   = errors.New("registry: domain sponsored by another registrar")
	ErrBadAuthInfo      = errors.New("registry: authorization information invalid")
	ErrStatusProhibits  = errors.New("registry: object status prohibits operation")
)

// Observer receives registry lifecycle events. Implementations must not
// call back into the Store synchronously from the handler if they take their
// own locks that Store methods can contend on; the EPP server's poll queue
// is the canonical consumer.
type Observer interface {
	// DomainPurged fires when a Drop deletion removes a registration;
	// registrarID is the sponsor that lost the name.
	DomainPurged(ev model.DeletionEvent, registrarID int)
	// DomainTransitioned fires on lifecycle state changes.
	DomainTransitioned(name string, registrarID int, from, to model.Status)
	// DomainTransferred fires when a registration changes sponsor; the
	// losing registrar is the natural poll-message recipient.
	DomainTransferred(name string, losingID, gainingID int)
}

// shard is one lock domain of the store. Every registration lives in exactly
// one shard, chosen by hashing its name, and everything a single-domain
// operation needs — the name and ID maps, the transfer codes, the due-day
// indexes and status tallies, and the due-day policy — is resident in that
// shard, guarded by that shard's lock. The EPP hot path (Check/Info/Create
// during the Drop second) therefore serialises only against operations on
// names that hash to the same shard, not against the whole registry.
type shard struct {
	mu      sync.RWMutex
	domains map[string]*model.Domain // active registrations by name
	byID    map[uint64]*model.Domain // this shard's registrations by object ID
	// authInfo holds each registration's transfer authorisation code. Never
	// exposed through RDAP/WHOIS; only the sponsor may read it.
	authInfo map[string]string

	// policy computes each registration's due day. Every shard holds the
	// same value (installed shard-by-shard via setDuePolicy); keeping a copy
	// per shard lets dueAdd/dueRemove read it under the shard lock alone.
	policy duePolicy
	// due is the time-bucketed secondary index: per lifecycle state, this
	// shard's live registrations bucketed by the UTC day their next
	// transition becomes due. Maintained incrementally by every mutator; the
	// daily sweeps merge the per-shard buckets in canonical order.
	due [model.StatusDeleted]dueIndex
	// statusCount tallies this shard's live registrations per state.
	statusCount [model.StatusDeleted + 1]int
}

// dueAdd indexes d under its current state and due day and bumps the status
// counter. The caller holds the shard's write lock; every live domain is
// indexed exactly once, in the shard its name hashes to.
func (sh *shard) dueAdd(d *model.Domain) {
	if int(d.Status) < len(sh.statusCount) {
		sh.statusCount[d.Status]++
	}
	if int(d.Status) < len(sh.due) {
		sh.due[d.Status].add(sh.policy.dueDay(d), d)
	}
}

// dueRemove un-indexes d. It must run *before* any field that feeds
// duePolicy.dueDay (Status, Expiry, Updated, RegistrarID, DeleteDay) is
// mutated, or the removal would look in the wrong bucket.
func (sh *shard) dueRemove(d *model.Domain) {
	if int(d.Status) < len(sh.statusCount) {
		sh.statusCount[d.Status]--
	}
	if int(d.Status) < len(sh.due) {
		sh.due[d.Status].remove(sh.policy.dueDay(d), d.ID)
	}
}

// Store is the registry database. All methods are safe for concurrent use.
//
// Internally the store is sharded by domain-name hash: single-domain
// operations (the EPP Create/Check/Info hot path, RDAP/WHOIS lookups) take
// exactly one shard lock, while cross-shard sweeps (PendingDeletions, the
// due-index visitors, Each, Count, StatusCounts) visit the shards one at a
// time and merge in the canonical orders the consumers sort into. The shard
// count is fixed at construction (NewStoreWithShards); NewStore derives it
// from GOMAXPROCS. One shard reproduces the classic single-lock store.
//
// Lock-ordering rule: at most one shard lock is ever held at a time, and the
// registrar and deletion-archive locks may be taken while holding a shard
// lock but never the reverse. Multi-shard readers release shard i before
// locking shard i+1, so there is no lock-order cycle anywhere in the store.
// The single exception is CaptureSnapshotQuiesced, which read-locks regMu
// and every shard in ascending index order; that still nests cleanly
// because no path holds a shard lock while acquiring regMu or another
// shard's lock.
type Store struct {
	clock simtime.Clock

	// gen counts committed mutations of publicly observable state. Every
	// successful mutator bumps it exactly once, inside its shard's write-lock
	// critical section; failed operations leave it untouched. Response caches
	// in the serving layers (RDAP, WHOIS, dropscope) key rendered bytes by
	// this counter: a cached body is valid exactly while Generation() still
	// returns the value it was rendered under. The counter stays a single
	// global atomic — not per-shard — so gencache keys and HTTP ETags are
	// oblivious to the shard layout. Readable lock-free via Generation().
	gen atomic.Uint64

	// nextID is the global object-ID allocator: the last ID handed out.
	// Mutators allocate with Add(1) *after* their existence checks pass, so
	// failed creates never consume an ID and single-threaded drives hand out
	// exactly the same IDs at any shard count.
	nextID atomic.Uint64

	// scanEngine routes the daily sweeps through the retained full-scan
	// reference implementations (scanref.go) instead of the due indexes.
	// Differential tests and benchmark baselines only.
	scanEngine atomic.Bool

	// observer is the installed event consumer (pointer-to-interface so nil
	// can be stored atomically). Mutators load it inside their critical
	// section and deliver after unlocking.
	observer atomic.Pointer[Observer]

	// journal is the attached write-ahead journal (pointer-to-interface, like
	// observer). Mutators append their Mutation record inside the critical
	// section — after the in-memory change, before the generation bump — and
	// run the returned durability wait after unlocking. See journal.go.
	journal atomic.Pointer[Journal]

	// shards has power-of-two length; mask routes a name hash to its shard.
	shards []shard
	mask   uint64

	regMu      sync.RWMutex
	registrars map[int]model.Registrar

	// deletions is the ground-truth archive of Drop deletions, per day.
	// Guarded by its own mutex: purge appends while holding the purged
	// name's shard lock (shard → delMu, never the reverse).
	delMu     sync.Mutex
	deletions map[simtime.Day][]model.DeletionEvent

	// zoneTab is the zone registry: which TLDs this store operates, under
	// which lifecycle and drop policy (zones.go). Its mutex is a leaf lock
	// like delMu: splitName reads it under a shard lock during replay.
	zoneTab zoneTable
}

// MaxShards caps the shard count; beyond this the per-shard maps are so
// sparsely populated that cross-shard sweeps pay pure overhead.
const MaxShards = 256

// normalizeShardCount maps the constructor knob to the actual shard count:
// values ≤ 0 derive the count from GOMAXPROCS (the lock parallelism the
// hardware can actually use), anything else is rounded up to the next power
// of two so the hash can route with a mask, and the result is clamped to
// [1, MaxShards].
func normalizeShardCount(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p < n && p < MaxShards {
		p <<= 1
	}
	return p
}

// shardOf routes a domain name to its shard (FNV-1a over the name, masked).
// The hash is fixed for the life of the store: a registration never changes
// shards, whatever lifecycle state it is in.
func (s *Store) shardOf(name string) *shard {
	return &s.shards[s.shardIndex(name)]
}

// shardIndex is shardOf as an index, for callers that group work by shard
// (ApplyBatch) rather than locking one.
func (s *Store) shardIndex(name string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return h & s.mask
}

// ShardCount reports how many shards the store was built with.
func (s *Store) ShardCount() int { return len(s.shards) }

// setDuePolicy installs the due-day policy and rebuilds every index bucket
// under it — O(store), paid once when a Lifecycle is attached or its grace
// spread changes. Shards are rebuilt one at a time under their own locks.
func (s *Store) setDuePolicy(p duePolicy) {
	// The base parameters govern the default zone; TLDs operated by other
	// zones keep their own lifecycle clocks through the per-TLD overrides,
	// whatever Lifecycle is (re-)attached for the default zone.
	p.perTLD = s.zoneDuePerTLD()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for j := range sh.due {
			sh.due[j] = dueIndex{}
		}
		sh.policy = p
		for _, d := range sh.domains {
			if int(d.Status) < len(sh.due) {
				sh.due[d.Status].add(p.dueDay(d), d)
			}
		}
		sh.mu.Unlock()
	}
}

// SetScanEngine routes Lifecycle.Tick, DropRunner.BuildQueue and
// PendingDeletions through the retained full-scan reference implementations
// instead of the due-day indexes. The indexes are still maintained, so the
// flag can be flipped at any time; both engines must produce byte-identical
// results (the differential tests assert exactly that). It exists for those
// tests and for benchmarking the pre-index baseline — production callers
// never need it.
func (s *Store) SetScanEngine(enabled bool) { s.scanEngine.Store(enabled) }

func (s *Store) useScan() bool { return s.scanEngine.Load() }

// Generation returns the store's mutation counter without taking any lock.
// It increases by (at least) one for every committed mutation of observable
// state — domain creation, transfer, touch, renewal, lifecycle transition,
// purge, registrar accreditation — and never decreases or repeats.
//
// Cache discipline: read the generation, render the response, then read the
// generation again; install the body into a cache only when the two reads
// match. The discipline survives sharding because every bump happens inside
// the mutating shard's write-lock critical section: a mutation that commits
// before the first generation read has released no lock the render could
// have slipped past (the render's read lock on that shard waits it out), and
// one that commits afterwards makes the second read differ, so the body is
// dropped instead of installed. Serve a cached body only while Generation()
// still equals the generation it was installed under.
func (s *Store) Generation() uint64 { return s.gen.Load() }

// bumpGen records a committed mutation. Callers hold the write lock of the
// shard (or registrar table) whose state the mutation changed.
func (s *Store) bumpGen() { s.gen.Add(1) }

// NewStore returns an empty Store reading time from clock, with the shard
// count derived from GOMAXPROCS.
func NewStore(clock simtime.Clock) *Store { return NewStoreWithShards(clock, 0) }

// NewStoreWithShards returns an empty Store with an explicit shard count:
// 0 derives the count from GOMAXPROCS, 1 reproduces the classic single-lock
// store, other values are rounded up to the next power of two (clamped to
// MaxShards). The shard count never changes a store's observable behaviour —
// only how much lock parallelism concurrent callers get — and the
// differential tests pin outputs byte-identical across shard counts.
func NewStoreWithShards(clock simtime.Clock, shards int) *Store {
	n := normalizeShardCount(shards)
	s := &Store{
		clock:      clock,
		shards:     make([]shard, n),
		mask:       uint64(n - 1),
		registrars: make(map[int]model.Registrar),
		deletions:  make(map[simtime.Day][]model.DeletionEvent),
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.domains = make(map[string]*model.Domain)
		sh.byID = make(map[uint64]*model.Domain)
		sh.authInfo = make(map[string]string)
	}
	s.zoneTab.init()
	return s
}

// SetObserver installs the event consumer; pass nil to remove it. Events
// are delivered synchronously, after the store's own state change commits.
func (s *Store) SetObserver(o Observer) {
	if o == nil {
		s.observer.Store(nil)
		return
	}
	s.observer.Store(&o)
}

// loadObserver returns the installed observer, or nil.
func (s *Store) loadObserver() Observer {
	if p := s.observer.Load(); p != nil {
		return *p
	}
	return nil
}

// AddRegistrar registers an accreditation. Creating or updating domains under
// an unknown IANA ID fails. Journal durability errors are not reported here
// (the signature predates journaling); they resurface on the journal itself.
func (s *Store) AddRegistrar(r model.Registrar) {
	s.regMu.Lock()
	s.registrars[r.IANAID] = r
	wait := s.appendJournal(Mutation{Kind: MutAddRegistrar, Registrar: r})
	s.bumpGen()
	s.regMu.Unlock()
	_ = waitJournal(wait)
}

// Registrar looks up an accreditation by IANA ID.
func (s *Store) Registrar(ianaID int) (model.Registrar, bool) {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	r, ok := s.registrars[ianaID]
	return r, ok
}

// hasRegistrar reports whether ianaID is accredited. Accreditations are
// add-only, so a true answer read before taking a shard lock cannot go
// stale inside the critical section.
func (s *Store) hasRegistrar(ianaID int) bool {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	_, ok := s.registrars[ianaID]
	return ok
}

// Registrars returns all accreditations, sorted by IANA ID.
func (s *Store) Registrars() []model.Registrar {
	s.regMu.RLock()
	defer s.regMu.RUnlock()
	return s.registrarsLocked()
}

// registrarsLocked builds the sorted accreditation list; the caller holds
// regMu (either mode).
func (s *Store) registrarsLocked() []model.Registrar {
	out := make([]model.Registrar, 0, len(s.registrars))
	for _, r := range s.registrars {
		out = append(out, r)
	}
	slices.SortFunc(out, func(a, b model.Registrar) int { return cmp.Compare(a.IANAID, b.IANAID) })
	return out
}

// splitNameSyntax validates name's structure — a label and a non-empty
// suffix, lowercase LDH label of 1–63 chars — without deciding whether any
// zone operates the suffix. That is the store's call (splitName).
func splitNameSyntax(name string) (label string, tld model.TLD, err error) {
	t, ok := model.TLDOf(name)
	if !ok {
		return "", "", fmt.Errorf("%w: %q", ErrUnknownTLD, name)
	}
	label = name[:len(name)-len(t)-1]
	if label == "" || len(label) > 63 {
		return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '-':
		default:
			return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
		}
	}
	if label[0] == '-' || label[len(label)-1] == '-' {
		return "", "", fmt.Errorf("%w: %q", ErrBadName, name)
	}
	return label, t, nil
}

// splitName validates name's syntax and that its TLD is operated by one of
// this store's zones. Reads the zone table's leaf lock only; safe under a
// shard lock (replay calls it there).
func (s *Store) splitName(name string) (label string, tld model.TLD, err error) {
	label, tld, err = splitNameSyntax(name)
	if err != nil {
		return "", "", err
	}
	if !s.HostsTLD(tld) {
		return "", "", fmt.Errorf("%w: %q", ErrUnknownTLD, name)
	}
	return label, tld, nil
}

// CheckName validates a domain name's syntax and TLD without taking any
// lock, so protocol front ends can reject garbage before charging
// rate-limit budget (an invalid-name create must never cost a token).
//
// Deprecated: the package-level check can only answer for the default
// .com/.net zone. Store-backed callers should use Store.CheckName, which
// consults the store's actual zone set.
func CheckName(name string) error {
	_, t, err := splitNameSyntax(name)
	if err != nil {
		return err
	}
	if !t.Valid() {
		return fmt.Errorf("%w: %q", ErrUnknownTLD, name)
	}
	return nil
}

// Available reports whether name could be created right now.
func (s *Store) Available(name string) (bool, error) {
	if _, _, err := s.splitName(name); err != nil {
		return false, err
	}
	sh := s.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, taken := sh.domains[name]
	return !taken, nil
}

// Create registers name to registrarID for termYears, timestamped with the
// store clock. It fails with ErrExists if the name is taken in any lifecycle
// state — names in pendingDelete are not re-registrable until purged by the
// Drop, which is exactly the scarcity drop-catching competes over.
func (s *Store) Create(name string, registrarID int, termYears int) (*model.Domain, error) {
	return s.CreateAt(name, registrarID, termYears, s.clock.Now())
}

// CreateAt is Create with an explicit creation instant; the simulation driver
// uses it to materialise claims resolved during a Drop at their exact
// re-registration times. The instant is truncated to whole seconds.
func (s *Store) CreateAt(name string, registrarID int, termYears int, at time.Time) (*model.Domain, error) {
	_, tld, err := s.splitName(name)
	if err != nil {
		return nil, err
	}
	if termYears < 1 || termYears > 10 {
		return nil, fmt.Errorf("%w: term %d years", ErrBadName, termYears)
	}
	// Accreditation check before the shard lock (keeps single-domain
	// operations on one lock); add-only registrars make this TOCTOU-safe.
	if !s.hasRegistrar(registrarID) {
		return nil, fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, registrarID)
	}
	at = simtime.Trunc(at)
	sh := s.shardOf(name)
	sh.mu.Lock()
	if _, taken := sh.domains[name]; taken {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	d := &model.Domain{
		ID:          s.nextID.Add(1),
		Name:        name,
		TLD:         tld,
		RegistrarID: registrarID,
		Created:     at,
		Updated:     at,
		Expiry:      at.AddDate(termYears, 0, 0),
		Status:      model.StatusActive,
	}
	sh.domains[name] = d
	sh.byID[d.ID] = d
	sh.authInfo[name] = deriveAuthInfo(d.ID, name)
	sh.dueAdd(d)
	wait := s.appendJournal(Mutation{
		Kind: MutCreate, ID: d.ID, Name: name, RegistrarID: registrarID,
		Created: d.Created, Updated: d.Updated, Expiry: d.Expiry,
	})
	s.bumpGen()
	out := cloned(d)
	sh.mu.Unlock()
	if err := waitJournal(wait); err != nil {
		return nil, err
	}
	return out, nil
}

// deriveAuthInfo mints a registration's transfer code (splitmix64 over the
// object ID and name, base-36 rendered). Deterministic so equal simulations
// stay equal; opaque enough that it cannot be guessed from public data.
func deriveAuthInfo(id uint64, name string) string {
	h := id + 0x9e3779b97f4a7c15
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h ^= h >> 31
	const digits = "0123456789abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 12)
	for i := range buf {
		buf[i] = digits[h%36]
		h /= 36
	}
	return "AX-" + string(buf)
}

// AuthInfo returns the registration's transfer code; only the sponsoring
// registrar may read it.
func (s *Store) AuthInfo(name string, registrarID int) (string, error) {
	sh := s.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.domains[name]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		return "", fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	return sh.authInfo[name], nil
}

// Transfer moves an active registration to the gaining registrar when the
// presented authorisation code matches, rotating the code and recording the
// update (registrar transfers bump the "last updated" timestamp, another
// reason update times spread across registrations). The losing sponsor is
// notified through the observer.
func (s *Store) Transfer(name string, gainingID int, authInfo string) error {
	// Pre-read the accreditation so the critical section touches only the
	// shard; the error precedence below matches the single-lock store.
	gainingKnown := s.hasRegistrar(gainingID)
	sh := s.shardOf(name)
	sh.mu.Lock()
	d, ok := sh.domains[name]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if !gainingKnown {
		sh.mu.Unlock()
		return fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, gainingID)
	}
	if d.Status != model.StatusActive && d.Status != model.StatusAutoRenew {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q in %v", ErrStatusProhibits, name, d.Status)
	}
	if d.RegistrarID == gainingID {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q already sponsored by %d", ErrWrongRegistrar, name, gainingID)
	}
	if sh.authInfo[name] != authInfo || authInfo == "" {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrBadAuthInfo, name)
	}
	losing := d.RegistrarID
	sh.dueRemove(d)
	d.RegistrarID = gainingID
	d.Updated = simtime.Trunc(s.clock.Now())
	d.Status = model.StatusActive
	sh.dueAdd(d)
	sh.authInfo[name] = deriveAuthInfo(d.ID^0x5bf0, name)
	wait := s.appendJournal(Mutation{Kind: MutTransfer, Name: name, RegistrarID: gainingID, Updated: d.Updated})
	s.bumpGen()
	obs := s.loadObserver()
	sh.mu.Unlock()
	if err := waitJournal(wait); err != nil {
		return err
	}
	if obs != nil {
		obs.DomainTransferred(name, losing, gainingID)
	}
	return nil
}

// Get returns a copy of the current registration of name.
func (s *Store) Get(name string) (*model.Domain, error) {
	sh := s.shardOf(name)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	d, ok := sh.domains[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return cloned(d), nil
}

// GetByID returns a copy of the registration with the given registry object
// ID, if it still exists. IDs do not carry shard routing, so this probes the
// shards in turn — fine for its occasional callers, not a hot path.
func (s *Store) GetByID(id uint64) (*model.Domain, error) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		d, ok := sh.byID[id]
		if ok {
			c := cloned(d)
			sh.mu.RUnlock()
			return c, nil
		}
		sh.mu.RUnlock()
	}
	return nil, fmt.Errorf("%w: id %d", ErrNotFound, id)
}

// Touch records a registrar-initiated update to the domain, setting the
// "last updated" timestamp that later determines the deletion order.
func (s *Store) Touch(name string, registrarID int) error {
	return s.TouchAt(name, registrarID, s.clock.Now())
}

// TouchAt is Touch at an explicit instant (truncated to seconds).
func (s *Store) TouchAt(name string, registrarID int, at time.Time) error {
	sh := s.shardOf(name)
	sh.mu.Lock()
	d, ok := sh.domains[name]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	sh.dueRemove(d)
	d.Updated = simtime.Trunc(at)
	sh.dueAdd(d)
	wait := s.appendJournal(Mutation{Kind: MutTouch, Name: name, Updated: d.Updated})
	s.bumpGen()
	sh.mu.Unlock()
	return waitJournal(wait)
}

// Renew extends the registration by years and records the update.
func (s *Store) Renew(name string, registrarID int, years int) error {
	sh := s.shardOf(name)
	sh.mu.Lock()
	d, ok := sh.domains[name]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.RegistrarID != registrarID {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrWrongRegistrar, name)
	}
	now := simtime.Trunc(s.clock.Now())
	sh.dueRemove(d)
	d.Expiry = d.Expiry.AddDate(years, 0, 0)
	d.Updated = now
	d.Status = model.StatusActive
	sh.dueAdd(d)
	wait := s.appendJournal(Mutation{Kind: MutRenew, Name: name, Updated: d.Updated, Expiry: d.Expiry})
	s.bumpGen()
	sh.mu.Unlock()
	return waitJournal(wait)
}

// setState transitions a domain's lifecycle state; used by the lifecycle
// engine and the population seeder (via the exported helpers below).
func (s *Store) setState(name string, st model.Status, updated time.Time, deleteDay simtime.Day) error {
	sh := s.shardOf(name)
	sh.mu.Lock()
	d, ok := sh.domains[name]
	if !ok {
		sh.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	from := d.Status
	sh.dueRemove(d)
	d.Status = st
	var recUpdated time.Time // zero = keep, mirrored by replay
	if !updated.IsZero() {
		d.Updated = simtime.Trunc(updated)
		recUpdated = d.Updated
	}
	d.DeleteDay = deleteDay
	sh.dueAdd(d)
	wait := s.appendJournal(Mutation{Kind: MutSetState, Name: name, Status: st, Updated: recUpdated, DeleteDay: deleteDay})
	s.bumpGen()
	obs := s.loadObserver()
	registrarID := d.RegistrarID
	sh.mu.Unlock()
	if err := waitJournal(wait); err != nil {
		return err
	}
	if obs != nil && from != st {
		obs.DomainTransitioned(name, registrarID, from, st)
	}
	return nil
}

// MarkRedemption moves the domain into the redemption period following a
// registrar-initiated delete; at is the delete instant and becomes the
// domain's last-updated timestamp (the future deletion-order key).
func (s *Store) MarkRedemption(name string, at time.Time) error {
	return s.setState(name, model.StatusRedemption, at, simtime.Day{})
}

// MarkPendingDelete moves the domain into pendingDelete scheduled for
// deletion on day. updated is the registrar's delete instant (the future
// deletion-order key); pass the zero time to keep the current value.
func (s *Store) MarkPendingDelete(name string, updated time.Time, day simtime.Day) error {
	return s.setState(name, model.StatusPendingDelete, updated, day)
}

// PendingDeletions returns copies of all domains in pendingDelete whose
// scheduled deletion day falls within [from, from+days). Results are sorted
// by (DeleteDay, Name) so published pending-delete lists are stable — the
// paper observed that list order is *not* the deletion order (Figure 3, top).
//
// It walks only the due-day buckets inside the window, shard by shard, then
// imposes the canonical (DeleteDay, Name) order on the merged result — names
// are unique, so the sort is total and the output is byte-identical at every
// shard count.
func (s *Store) PendingDeletions(from simtime.Day, days int) []*model.Domain {
	if s.useScan() {
		return s.pendingDeletionsScan(from, days)
	}
	end := from.AddDays(days)
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.due[model.StatusPendingDelete].eachBucket(from, end, func(_ simtime.Day, b map[uint64]*model.Domain) { n += len(b) })
		sh.mu.RUnlock()
	}
	out := make([]*model.Domain, 0, n)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.due[model.StatusPendingDelete].eachBucket(from, end, func(_ simtime.Day, b map[uint64]*model.Domain) {
			for _, d := range b {
				out = append(out, cloned(d))
			}
		})
		sh.mu.RUnlock()
	}
	slices.SortFunc(out, func(a, b *model.Domain) int {
		if c := a.DeleteDay.Compare(b.DeleteDay); c != 0 {
			return c
		}
		return strings.Compare(a.Name, b.Name)
	})
	return out
}

// purge removes the domain as part of a Drop, recording the ground-truth
// deletion event. The caller (DropRunner) holds the deletion order.
func (s *Store) purge(name string, at time.Time, rank int) (model.DeletionEvent, error) {
	sh := s.shardOf(name)
	sh.mu.Lock()
	d, ok := sh.domains[name]
	if !ok {
		sh.mu.Unlock()
		return model.DeletionEvent{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if d.Status != model.StatusPendingDelete {
		status := d.Status
		sh.mu.Unlock()
		return model.DeletionEvent{}, fmt.Errorf("%w: %q in %v", ErrNotPendingDelete, name, status)
	}
	ev := model.DeletionEvent{
		DomainID: d.ID,
		Name:     d.Name,
		TLD:      d.TLD,
		Time:     simtime.Trunc(at),
		Rank:     rank,
	}
	sh.dueRemove(d)
	delete(sh.domains, name)
	delete(sh.byID, d.ID)
	delete(sh.authInfo, name)
	day := simtime.DayOf(at)
	s.delMu.Lock()
	s.deletions[day] = append(s.deletions[day], ev)
	s.delMu.Unlock()
	wait := s.appendJournal(Mutation{Kind: MutPurge, ID: ev.DomainID, Name: name, Time: ev.Time, Rank: rank})
	s.bumpGen()
	obs := s.loadObserver()
	registrarID := d.RegistrarID
	sh.mu.Unlock()
	if err := waitJournal(wait); err != nil {
		return ev, err
	}
	if obs != nil {
		obs.DomainPurged(ev, registrarID)
	}
	return ev, nil
}

// Deletions returns the ground-truth deletion events recorded on day, in
// deletion order. The measurement pipeline must not use these; they exist
// for the inference-accuracy ablation.
func (s *Store) Deletions(day simtime.Day) []model.DeletionEvent {
	s.delMu.Lock()
	defer s.delMu.Unlock()
	return append([]model.DeletionEvent(nil), s.deletions[day]...)
}

// Count returns the number of live (non-purged) registrations.
func (s *Store) Count() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.domains)
		sh.mu.RUnlock()
	}
	return n
}

// StatusCounts tallies live registrations per lifecycle state. The tallies
// are maintained incrementally per shard, so this is O(shards · states),
// not O(store).
func (s *Store) StatusCounts() map[model.Status]int {
	var total [model.StatusDeleted + 1]int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for st, n := range sh.statusCount {
			total[st] += n
		}
		sh.mu.RUnlock()
	}
	out := make(map[model.Status]int)
	for st, n := range total {
		if n > 0 {
			out[model.Status(st)] = n
		}
	}
	return out
}

// Each calls fn for every live registration (copies, unspecified order) and
// stops early if fn returns false.
//
// Locking contract: a shard read lock is held while that shard is swept, so
// fn must not call any Store method — not even read-only ones like Get. A
// re-entrant RLock deadlocks as soon as a writer is queued behind the held
// lock. The safe pattern is collect-then-act: record what to change while
// iterating and apply it after Each returns (TestEachCollectThenAct pins
// this down). The copies are fn's to keep and mutate freely.
//
// Consistency: shards are visited one at a time, so concurrent mutators may
// commit between shard visits; the sweep is a consistent snapshot per shard,
// not of the whole store. Single-threaded drives (every simulation path) see
// exactly the single-lock behaviour.
func (s *Store) Each(fn func(*model.Domain) bool) {
	s.each(func(d *model.Domain) bool { return fn(cloned(d)) })
}

// each is the clone-free internal iteration path: fn receives the store's
// live *model.Domain pointers with the owning shard's read lock held. fn
// must treat them as strictly read-only, must not retain a pointer past its
// call, and must not call Store methods (same self-deadlock as Each). Hot
// sweeps use this (and the due-index visitors below) to avoid one Domain
// clone per domain per scan; everything that escapes the package keeps
// Each's cloning semantics.
func (s *Store) each(fn func(*model.Domain) bool) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, d := range sh.domains {
			if !fn(d) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// eachDueThrough calls fn for every live registration in state st whose
// due-day bucket is on or before limit. Same read-only, lock-held contract
// as each; shard visit order and bucket-internal map order are unspecified,
// so callers sort deterministically.
func (s *Store) eachDueThrough(st model.Status, limit simtime.Day, fn func(*model.Domain)) {
	if int(st) >= int(model.StatusDeleted) {
		return
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		sh.due[st].through(limit, fn)
		sh.mu.RUnlock()
	}
}

// pendingCountOn returns the number of pendingDelete registrations scheduled
// for deletion on day — the exact size of that day's Drop queue.
func (s *Store) pendingCountOn(day simtime.Day) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += sh.due[model.StatusPendingDelete].count(day)
		sh.mu.RUnlock()
	}
	return n
}

// eachPendingOn calls fn for every pendingDelete registration scheduled for
// deletion on day. Same read-only, lock-held contract as each.
func (s *Store) eachPendingOn(day simtime.Day, fn func(*model.Domain)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, d := range sh.due[model.StatusPendingDelete].buckets[day] {
			fn(d)
		}
		sh.mu.RUnlock()
	}
}

// SeedAt inserts a fully specified historical registration. The population
// seeder uses it to backfill domains that were created years before the
// simulation starts. IDs must be assigned through the store to preserve the
// "IDs increase with creation time" invariant, so SeedAt takes no ID; call it
// in creation-time order.
func (s *Store) SeedAt(name string, registrarID int, created, updated, expiry time.Time, st model.Status, deleteDay simtime.Day) (*model.Domain, error) {
	_, tld, err := s.splitName(name)
	if err != nil {
		return nil, err
	}
	if !s.hasRegistrar(registrarID) {
		return nil, fmt.Errorf("%w: IANA ID %d", ErrUnknownRegistrar, registrarID)
	}
	sh := s.shardOf(name)
	sh.mu.Lock()
	if _, taken := sh.domains[name]; taken {
		sh.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	d := &model.Domain{
		ID:          s.nextID.Add(1),
		Name:        name,
		TLD:         tld,
		RegistrarID: registrarID,
		Created:     simtime.Trunc(created),
		Updated:     simtime.Trunc(updated),
		Expiry:      simtime.Trunc(expiry),
		Status:      st,
		DeleteDay:   deleteDay,
	}
	sh.domains[name] = d
	sh.byID[d.ID] = d
	sh.dueAdd(d)
	wait := s.appendJournal(Mutation{
		Kind: MutSeed, ID: d.ID, Name: name, RegistrarID: registrarID,
		Created: d.Created, Updated: d.Updated, Expiry: d.Expiry,
		Status: st, DeleteDay: deleteDay,
	})
	s.bumpGen()
	out := cloned(d)
	sh.mu.Unlock()
	if err := waitJournal(wait); err != nil {
		return nil, err
	}
	return out, nil
}

func cloned(d *model.Domain) *model.Domain {
	c := *d
	return &c
}
