package registry

import (
	"fmt"
	"testing"
)

// BenchmarkDailySweep measures one simulated registry day's worth of sweep
// work — Lifecycle.Tick, DropRunner.BuildQueue and Store.PendingDeletions —
// against stores of increasing size, with the due-day-indexed engine and the
// full-scan reference side by side. The population is the realistic worst
// case for a scan: almost everything is a live registration with a future
// expiry that the day's sweeps must not touch, plus ~300 pending deletions
// that are the actual due work. The indexed engine's cost tracks the latter;
// the scan's tracks the former.
//
// Nothing is due at noon, so Tick never mutates and every iteration sees the
// same store.
func BenchmarkDailySweep(b *testing.B) {
	for _, size := range []int{100_000, 1_000_000} {
		s, lc, runner, today := sweepWorld(b, size, 60)
		now := today.At(12, 0, 0)
		if n := lc.Tick(now); n != 0 {
			b.Fatalf("Tick transitioned %d domains; the benchmark needs an idle store", n)
		}
		for _, eng := range []struct {
			name string
			scan bool
		}{{"indexed", false}, {"scan", true}} {
			s.SetScanEngine(eng.scan)
			b.Run(fmt.Sprintf("store=%d/engine=%s", size, eng.name), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					lc.Tick(now)
					runner.BuildQueue(today)
					s.PendingDeletions(today, 5)
				}
			})
		}
		s.SetScanEngine(false)
	}
}
