package registry

import (
	"math/rand"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

func TestLifecycleFullPipeline(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2017, 1, 1, 12, 0, 0, 0, time.UTC))
	s := NewStore(clock)
	s.AddRegistrar(model.Registrar{IANAID: 1000})
	cfg := DefaultLifecycleConfig()
	cfg.GraceDays = map[int]int{1000: 40}
	lc := NewLifecycle(s, cfg)

	d, err := s.Create("expiring.com", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Just before expiry: nothing happens.
	clock.Set(d.Expiry.Add(-time.Hour))
	if n := lc.Tick(clock.Now()); n != 0 {
		t.Fatalf("transitions before expiry: %d", n)
	}

	// At expiry: auto-renew grace.
	clock.Set(d.Expiry.Add(time.Hour))
	if n := lc.Tick(clock.Now()); n != 1 {
		t.Fatalf("transitions at expiry: %d", n)
	}
	got, _ := s.Get("expiring.com")
	if got.Status != model.StatusAutoRenew {
		t.Fatalf("status = %v, want autoRenew", got.Status)
	}

	// During grace: still autoRenew.
	clock.Set(d.Expiry.AddDate(0, 0, 20))
	lc.Tick(clock.Now())
	got, _ = s.Get("expiring.com")
	if got.Status != model.StatusAutoRenew {
		t.Fatalf("status during grace = %v", got.Status)
	}

	// After grace: registrar deletes → redemption, Updated set to the
	// registrar's batch instant.
	clock.Set(d.Expiry.AddDate(0, 0, 41))
	lc.Tick(clock.Now())
	got, _ = s.Get("expiring.com")
	if got.Status != model.StatusRedemption {
		t.Fatalf("status after grace = %v", got.Status)
	}
	wantBatch := cfg.BatchInstant(simtime.DayOf(clock.Now()), 1000)
	if !got.Updated.Equal(wantBatch) {
		t.Fatalf("Updated = %v, want batch instant %v", got.Updated, wantBatch)
	}

	// After redemption: pendingDelete with a DeleteDay 5 days out.
	clock.Set(got.Updated.AddDate(0, 0, cfg.RedemptionDays+1))
	lc.Tick(clock.Now())
	got, _ = s.Get("expiring.com")
	if got.Status != model.StatusPendingDelete {
		t.Fatalf("status after redemption = %v", got.Status)
	}
	wantDay := simtime.DayOf(clock.Now()).AddDays(cfg.PendingDeleteDays)
	if got.DeleteDay != wantDay {
		t.Fatalf("DeleteDay = %v, want %v", got.DeleteDay, wantDay)
	}

	// The Drop can now purge it on its DeleteDay.
	events, err := NewDropRunner(s, DefaultDropConfig()).Run(wantDay, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "expiring.com" {
		t.Fatalf("drop events = %+v", events)
	}
}

func TestLifecycleRenewalPreventsExpiry(t *testing.T) {
	clock := simtime.NewSimClock(time.Date(2017, 1, 1, 12, 0, 0, 0, time.UTC))
	s := NewStore(clock)
	s.AddRegistrar(model.Registrar{IANAID: 1000})
	lc := NewLifecycle(s, DefaultLifecycleConfig())

	d, _ := s.Create("renewed.com", 1000, 1)
	clock.Set(d.Expiry.Add(time.Hour))
	lc.Tick(clock.Now())
	// The registrant pays during the grace period: renew.
	if err := s.Renew("renewed.com", 1000, 1); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("renewed.com")
	if got.Status != model.StatusActive {
		t.Fatalf("status after renew = %v", got.Status)
	}
	// Grace deadline passes; the renewed domain must stay active.
	clock.Set(d.Expiry.AddDate(0, 0, 50))
	lc.Tick(clock.Now())
	got, _ = s.Get("renewed.com")
	if got.Status != model.StatusActive {
		t.Fatalf("renewed domain expired anyway: %v", got.Status)
	}
}

func TestBatchInstantSharedWithinRegistrar(t *testing.T) {
	cfg := DefaultLifecycleConfig()
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 5}
	a := cfg.BatchInstant(day, 1234)
	b := cfg.BatchInstant(day, 1234)
	if !a.Equal(b) {
		t.Fatal("batch instant not deterministic")
	}
	c := cfg.BatchInstant(day, 1235)
	if a.Equal(c) {
		t.Fatal("different registrars batch at the identical instant")
	}
}

func TestBatchInstantNotMonotonicInID(t *testing.T) {
	cfg := DefaultLifecycleConfig()
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 5}
	increasing := 0
	total := 0
	prev := cfg.BatchInstant(day, 1000)
	for id := 1001; id < 1200; id++ {
		cur := cfg.BatchInstant(day, id)
		if cur.After(prev) {
			increasing++
		}
		total++
		prev = cur
	}
	// A monotonic mapping would make the §4.1 order search unable to
	// distinguish registrar-ID order from update-time order.
	if increasing > total*3/4 {
		t.Fatalf("batch instants nearly monotonic in IANA ID: %d/%d increasing", increasing, total)
	}
}

func TestSpreadGraceDays(t *testing.T) {
	s := NewStore(testClock())
	for i := 0; i < 20; i++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + i})
	}
	cfg := DefaultLifecycleConfig()
	SpreadGraceDays(&cfg, s, 25, 45, rand.New(rand.NewSource(1)))
	if len(cfg.GraceDays) != 20 {
		t.Fatalf("GraceDays size = %d", len(cfg.GraceDays))
	}
	distinct := make(map[int]bool)
	for id, g := range cfg.GraceDays {
		if g < 25 || g > 45 {
			t.Fatalf("grace %d out of range for %d", g, id)
		}
		distinct[g] = true
	}
	if len(distinct) < 2 {
		t.Fatal("grace days not spread")
	}
}

func TestLifecycleDeterministicOrder(t *testing.T) {
	run := func() []int {
		clock := simtime.NewSimClock(time.Date(2017, 1, 1, 12, 0, 0, 0, time.UTC))
		s := NewStore(clock)
		s.AddRegistrar(model.Registrar{IANAID: 1000})
		lc := NewLifecycle(s, DefaultLifecycleConfig())
		for i := 0; i < 10; i++ {
			s.Create("d"+string(rune('a'+i))+".com", 1000, 1)
		}
		clock.Set(clock.Now().AddDate(1, 0, 1))
		var order []int
		lc.Tick(clock.Now())
		s.Each(func(d *model.Domain) bool {
			order = append(order, int(d.Status))
			return true
		})
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different population")
	}
}
