package registry

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// TestApplyBatchMatchesApply is the batched-replay differential test: the
// same captured mutation stream fed through ApplyBatch — at every batching
// the replication follower might use, including batch boundaries landing
// mid-shard-group and a barrier MutAddRegistrar in the stream — must yield
// a store indistinguishable from one built record-at-a-time, generation
// counter included.
func TestApplyBatchMatchesApply(t *testing.T) {
	const days = 14
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	cap := &captureJournal{}
	_, orig := runEngineOn(t, 11, days, false, 0, cap)
	if len(cap.records) < 500 {
		t.Fatalf("workout too quiet: only %d journal records", len(cap.records))
	}
	want := dumpStore(orig, start, days+40)

	rng := rand.New(rand.NewSource(7))
	batchings := [][]int{
		{1},                    // degenerate: ApplyBatch == Apply
		{3},                    // tiny fixed batches
		{64}, {256},            // group-commit sized
		{len(cap.records)},     // the whole stream in one batch
		{0},                    // sentinel: random batch sizes 1..300
	}
	for _, sizes := range batchings {
		name := fmt.Sprintf("batch%d", sizes[0])
		t.Run(name, func(t *testing.T) {
			re := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
			for off := 0; off < len(cap.records); {
				n := sizes[0]
				if n == 0 {
					n = 1 + rng.Intn(300)
				}
				if off+n > len(cap.records) {
					n = len(cap.records) - off
				}
				if err := re.ApplyBatch(cap.records[off : off+n]); err != nil {
					t.Fatalf("batch at %d: %v", off, err)
				}
				off += n
			}
			diffDumps(t, "original", name, want, dumpStore(re, start, days+40))
		})
	}
}

// TestApplyBatchRegistrarBarrier pins the barrier semantics: a registrar
// record in the middle of a batch must not be reordered around the domain
// records surrounding it, and the generation counter must advance exactly
// once per record.
func TestApplyBatchRegistrarBarrier(t *testing.T) {
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	at := start.At(9, 0, 0)
	ms := []Mutation{
		{Kind: MutAddRegistrar, Registrar: model.Registrar{IANAID: 901, Name: "Reg A"}},
		{Kind: MutCreate, ID: 1, Name: "barrier-a.com", RegistrarID: 901, Created: at, Updated: at, Expiry: at.AddDate(1, 0, 0)},
		{Kind: MutAddRegistrar, Registrar: model.Registrar{IANAID: 902, Name: "Reg B"}},
		{Kind: MutCreate, ID: 2, Name: "barrier-b.com", RegistrarID: 902, Created: at, Updated: at, Expiry: at.AddDate(1, 0, 0)},
		{Kind: MutTransfer, Name: "barrier-a.com", RegistrarID: 902, Updated: at.Add(time.Hour)},
	}
	s := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
	if err := s.ApplyBatch(ms); err != nil {
		t.Fatal(err)
	}
	if got := s.Generation(); got != uint64(len(ms)) {
		t.Errorf("generation after batch = %d, want %d", got, len(ms))
	}
	d, err := s.Get("barrier-a.com")
	if err != nil {
		t.Fatal(err)
	}
	if d.RegistrarID != 902 {
		t.Errorf("barrier-a.com sponsor = %d, want transfer to 902 applied after create", d.RegistrarID)
	}
}

// syntheticStream builds a replication-shaped mutation stream: seeds, then
// interleaved touches, lifecycle state changes and purges across enough
// names to spread over every shard. Deterministic, so benchmark runs are
// comparable.
func syntheticStream(n int) []Mutation {
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	rng := rand.New(rand.NewSource(99))
	names := n / 4
	if names < 64 {
		names = 64
	}
	ms := make([]Mutation, 0, n+names+1)
	ms = append(ms, Mutation{Kind: MutAddRegistrar, Registrar: model.Registrar{IANAID: 900, Name: "Bench Reg"}})
	for i := 0; i < names; i++ {
		at := start.At(1, 0, i%60)
		ms = append(ms, Mutation{
			Kind: MutSeed, ID: uint64(i + 1), Name: fmt.Sprintf("repl-bench-%06d.com", i),
			RegistrarID: 900, Created: at, Updated: at, Expiry: at.AddDate(1, 0, 0),
			Status: model.StatusActive,
		})
	}
	for len(ms) < n+names+1 {
		i := rng.Intn(names)
		name := fmt.Sprintf("repl-bench-%06d.com", i)
		at := start.At(2, rng.Intn(60), rng.Intn(60))
		switch rng.Intn(10) {
		case 0:
			ms = append(ms, Mutation{Kind: MutSetState, Name: name, Status: model.StatusAutoRenew, Updated: at})
		case 1:
			ms = append(ms, Mutation{Kind: MutRenew, Name: name, Updated: at, Expiry: at.AddDate(1, 0, 0)})
		default:
			ms = append(ms, Mutation{Kind: MutTouch, Name: name, Updated: at})
		}
	}
	return ms
}

// BenchmarkReplicaApply measures the replica apply loop: records/sec
// through ApplyBatch at follower batch sizes, against record-at-a-time
// Apply as the baseline. The replication acceptance floor is 200k
// records/sec batched — a replica must absorb the Drop-second write burst
// without falling behind.
func BenchmarkReplicaApply(b *testing.B) {
	const streamLen = 200_000
	stream := syntheticStream(streamLen)
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	for _, batch := range []int{1, 64, 512} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for n := 0; n < b.N; n++ {
				b.StopTimer()
				s := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
				b.StartTimer()
				t0 := time.Now()
				for off := 0; off < len(stream); off += batch {
					end := off + batch
					if end > len(stream) {
						end = len(stream)
					}
					if err := s.ApplyBatch(stream[off:end]); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(len(stream))/time.Since(t0).Seconds(), "records/sec")
			}
		})
	}
}
