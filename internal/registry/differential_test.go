package registry

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// engineTrace is everything observable about a multi-week registry run:
// per-day transition counts, deletion queues, published pending-deletion
// windows, ground-truth deletion events, and the final store contents.
type engineTrace struct {
	tickCounts []int
	queues     [][]QueueEntry
	pending    [][]model.Domain
	deletions  [][]model.DeletionEvent
	counts     []map[model.Status]int
	final      []model.Domain
}

// runEngine drives one store through days of lifecycle ticks, Drops and
// interleaved registrar churn, all derived from seed. With scan=true the
// store answers every sweep via the retained full-scan reference engine;
// with scan=false it uses the due-day indexes. shards picks the store's
// shard count (0 = the GOMAXPROCS default). Identical seeds must yield
// identical traces at every engine and every shard count — that equivalence
// is the whole point.
func runEngine(t *testing.T, seed int64, days int, scan bool, shards int) engineTrace {
	t.Helper()
	tr, _ := runEngineOn(t, seed, days, scan, shards, nil)
	return tr
}

// runEngineOn is runEngine returning the final store as well, with an
// optional journal attached before the first mutation so the journal sees
// the complete record stream (the replay differential test depends on
// capturing everything, registrar adds and seeds included).
func runEngineOn(t *testing.T, seed int64, days int, scan bool, shards int, j Journal) (engineTrace, *Store) {
	t.Helper()
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	clock := simtime.NewSimClock(start.At(0, 30, 0))
	s := NewStoreWithShards(clock, shards)
	if j != nil {
		s.SetJournal(j)
	}
	s.SetScanEngine(scan)
	for r := 0; r < 10; r++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + r, Name: fmt.Sprintf("Reg %d", r)})
	}

	// Short pipeline so a domain can traverse active → autoRenew →
	// redemption → pendingDelete → purged inside the test window.
	cfg := DefaultLifecycleConfig()
	cfg.RedemptionDays = 10
	cfg.PendingDeleteDays = 3
	cfg.DefaultGraceDays = 8
	SpreadGraceDays(&cfg, s, 5, 15, rand.New(rand.NewSource(seed+1)))
	lc := NewLifecycle(s, cfg)
	runner := NewDropRunner(s, DefaultDropConfig())

	// Seed a mixed population. Every random draw comes from rng, in a fixed
	// order, so both engines build bit-identical worlds.
	rng := rand.New(rand.NewSource(seed))
	type holding struct {
		name    string
		sponsor int
	}
	var pool []holding
	for i := 0; i < 300; i++ {
		name := fmt.Sprintf("da%04d.com", i)
		sponsor := 1000 + rng.Intn(10)
		var err error
		switch {
		case i < 180: // active; many expire inside the window
			expiry := start.AddDays(-10+rng.Intn(days+20)).At(rng.Intn(24), rng.Intn(60), rng.Intn(60))
			_, err = s.SeedAt(name, sponsor, expiry.AddDate(-1, 0, 0), expiry.AddDate(-1, 0, 0), expiry, model.StatusActive, simtime.Day{})
		case i < 230: // autoRenew with the grace clock already running
			expiry := start.AddDays(-1-rng.Intn(20)).At(rng.Intn(24), rng.Intn(60), 0)
			_, err = s.SeedAt(name, sponsor, expiry.AddDate(-1, 0, 0), expiry, expiry, model.StatusAutoRenew, simtime.Day{})
		case i < 260: // redemption, Updated in the recent past
			updated := start.AddDays(-1-rng.Intn(12)).At(6, 30, rng.Intn(60))
			_, err = s.SeedAt(name, sponsor, updated.AddDate(-2, 0, 0), updated, updated.AddDate(0, 0, -20), model.StatusRedemption, simtime.Day{})
		default: // pendingDelete spread over the first week of Drops
			updated := start.AddDays(-20).At(6, 30, rng.Intn(60))
			_, err = s.SeedAt(name, sponsor, updated.AddDate(-2, 0, 0), updated, updated.AddDate(0, 0, -20), model.StatusPendingDelete, start.AddDays(rng.Intn(7)))
		}
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, holding{name, sponsor})
	}

	var tr engineTrace
	for di := 0; di < days; di++ {
		day := start.AddDays(di)

		// Morning churn: registrations, renewals, touches, transfers. Some
		// calls fail (wrong state, wrong sponsor) — identically on both
		// engines, since the worlds are identical.
		clock.Set(day.At(9, 0, 0))
		for j := 0; j < 3; j++ {
			name := fmt.Sprintf("new%03d-%d.com", di, j)
			sponsor := 1000 + rng.Intn(10)
			if _, err := s.CreateAt(name, sponsor, 1+rng.Intn(3), clock.Now()); err == nil {
				pool = append(pool, holding{name, sponsor})
			}
		}
		for j := 0; j < 4; j++ {
			h := pool[rng.Intn(len(pool))]
			switch rng.Intn(3) {
			case 0:
				s.Renew(h.name, h.sponsor, 1)
			case 1:
				s.TouchAt(h.name, h.sponsor, clock.Now())
			case 2:
				gaining := 1000 + rng.Intn(10)
				if code, err := s.AuthInfo(h.name, h.sponsor); err == nil {
					s.Transfer(h.name, gaining, code)
				}
			}
		}

		clock.Set(day.At(12, 0, 0))
		tr.tickCounts = append(tr.tickCounts, lc.Tick(clock.Now()))

		// The published pending-delete window and the day's queue, recorded
		// before the Drop consumes it.
		var window []model.Domain
		for _, d := range s.PendingDeletions(day, 5) {
			window = append(window, *d)
		}
		tr.pending = append(tr.pending, window)
		tr.queues = append(tr.queues, runner.BuildQueue(day))

		clock.Set(day.At(19, 0, 0))
		events, err := runner.Run(day, rand.New(rand.NewSource(seed+int64(1000+di))))
		if err != nil {
			t.Fatalf("day %v drop: %v", day, err)
		}
		tr.deletions = append(tr.deletions, events)
		tr.counts = append(tr.counts, s.StatusCounts())
	}

	s.Each(func(d *model.Domain) bool {
		tr.final = append(tr.final, *d)
		return true
	})
	slicesSortByName(tr.final)
	return tr, s
}

func slicesSortByName(ds []model.Domain) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].Name < ds[j-1].Name; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// compareTraces asserts two engine traces are identical in every observable:
// transition counts, deletion queues, published windows, deletion event
// logs, status counts and final store contents, day by day.
func compareTraces(t *testing.T, days int, aName, bName string, a, b engineTrace) {
	t.Helper()
	if !reflect.DeepEqual(a.tickCounts, b.tickCounts) {
		t.Errorf("tick counts diverge:\n%s: %v\n%s: %v", aName, a.tickCounts, bName, b.tickCounts)
	}
	for d := 0; d < days; d++ {
		if !reflect.DeepEqual(a.queues[d], b.queues[d]) {
			t.Errorf("day %d: deletion queues diverge (%s %d entries, %s %d)", d, aName, len(a.queues[d]), bName, len(b.queues[d]))
		}
		if !reflect.DeepEqual(a.pending[d], b.pending[d]) {
			t.Errorf("day %d: PendingDeletions windows diverge (%s %d, %s %d)", d, aName, len(a.pending[d]), bName, len(b.pending[d]))
		}
		if !reflect.DeepEqual(a.deletions[d], b.deletions[d]) {
			t.Errorf("day %d: deletion events diverge (%s %d, %s %d)", d, aName, len(a.deletions[d]), bName, len(b.deletions[d]))
		}
		if !reflect.DeepEqual(a.counts[d], b.counts[d]) {
			t.Errorf("day %d: status counts diverge:\n%s: %v\n%s: %v", d, aName, a.counts[d], bName, b.counts[d])
		}
	}
	if !reflect.DeepEqual(a.final, b.final) {
		t.Errorf("final store contents diverge (%s %d domains, %s %d)", aName, len(a.final), bName, len(b.final))
	}
}

// requireLively fails the test when a trace is too quiet to make the
// differential comparison meaningful.
func requireLively(t *testing.T, days int, tr engineTrace) {
	t.Helper()
	ticks, dels := 0, 0
	for d := 0; d < days; d++ {
		ticks += tr.tickCounts[d]
		dels += len(tr.deletions[d])
	}
	if ticks < 100 || dels < 50 {
		t.Fatalf("run too quiet to be meaningful: %d transitions, %d deletions", ticks, dels)
	}
}

// TestIndexedMatchesScanEngine is the differential test: over several seeds,
// the due-day-indexed sweeps and the retained full-scan reference must
// produce identical transition counts, deletion queues, published windows,
// deletion event logs, status counts and final store contents, day by day.
func TestIndexedMatchesScanEngine(t *testing.T) {
	const days = 40
	for _, seed := range []int64{1, 7, 20180108} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			idx := runEngine(t, seed, days, false, 0)
			ref := runEngine(t, seed, days, true, 0)
			compareTraces(t, days, "indexed", "scan", idx, ref)
			requireLively(t, days, idx)
		})
	}
}

// TestShardedMatchesSingleShard is the shard-count differential test: the
// same multi-week drive against a 1-shard (classic single-lock), 4-shard and
// 16-shard store must leave identical traces — deletion queues, published
// windows, events, counts and final contents all byte-identical. Shard
// routing must be invisible everywhere outside lock contention.
func TestShardedMatchesSingleShard(t *testing.T) {
	const days = 40
	for _, seed := range []int64{1, 7, 20180108} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			single := runEngine(t, seed, days, false, 1)
			for _, shards := range []int{4, 16} {
				got := runEngine(t, seed, days, false, shards)
				compareTraces(t, days, "1-shard", fmt.Sprintf("%d-shard", shards), single, got)
			}
			requireLively(t, days, single)
		})
	}
}
