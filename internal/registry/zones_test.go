package registry

import (
	"errors"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
	"dropzero/internal/zone"
)

func nordicZone() zone.Config {
	return zone.Config{
		Name:      "nordic",
		TLDs:      []model.TLD{"se", "nu"},
		Lifecycle: zone.DefaultLifecycleConfig(),
		Drop:      zone.DropConfig{StartHour: 4},
		Policy:    zone.PolicyInstant,
	}
}

func TestAddZoneMakesTLDsCreatable(t *testing.T) {
	s, _ := testStore(t)
	if err := s.CheckName("foo.se"); !errors.Is(err, ErrUnknownTLD) {
		t.Fatalf("pre-AddZone CheckName = %v, want ErrUnknownTLD", err)
	}
	if _, err := s.Create("foo.se", 1000, 1); !errors.Is(err, ErrUnknownTLD) {
		t.Fatalf("pre-AddZone Create = %v, want ErrUnknownTLD", err)
	}

	genBefore := s.Generation()
	if err := s.AddZone(nordicZone()); err != nil {
		t.Fatal(err)
	}
	if s.Generation() == genBefore {
		t.Error("AddZone did not bump the generation (caches would serve stale zone sets)")
	}
	if err := s.CheckName("foo.se"); err != nil {
		t.Fatalf("post-AddZone CheckName: %v", err)
	}
	if !s.HostsTLD("se") || !s.HostsTLD("nu") || s.HostsTLD("org") {
		t.Fatal("HostsTLD wrong after AddZone")
	}
	z, ok := s.ZoneOf("nu")
	if !ok || z.Name != "nordic" {
		t.Fatalf("ZoneOf(nu) = %+v, %v", z, ok)
	}
	if _, ok := s.ZoneByName("nordic"); !ok {
		t.Fatal("ZoneByName(nordic) missing")
	}
	zs := s.Zones()
	if len(zs) != 2 || zs[0].Name != zone.Default().Name || zs[1].Name != "nordic" {
		t.Fatalf("Zones() = %+v", zs)
	}
	if extra := s.ExtraZones(); len(extra) != 1 || extra[0].Name != "nordic" {
		t.Fatalf("ExtraZones() = %+v", extra)
	}
	if _, err := s.Create("foo.se", 1000, 1); err != nil {
		t.Fatalf("post-AddZone Create: %v", err)
	}
}

func TestAddZoneRejectsConflicts(t *testing.T) {
	s, _ := testStore(t)
	if err := s.AddZone(nordicZone()); err != nil {
		t.Fatal(err)
	}
	if err := s.AddZone(nordicZone()); err == nil {
		t.Error("duplicate zone name accepted")
	}
	clash := nordicZone()
	clash.Name = "clash"
	clash.TLDs = []model.TLD{"org", "com"}
	if err := s.AddZone(clash); err == nil {
		t.Error("TLD overlap with the default zone accepted")
	}
	bad := nordicZone()
	bad.Name = "bad"
	bad.TLDs = nil
	if err := s.AddZone(bad); err == nil {
		t.Error("TLD-less zone accepted")
	}
	// Failed additions must not leave partial state behind.
	if s.HostsTLD("org") {
		t.Error("rejected zone's TLD became hosted")
	}
}

// Zone additions travel the same mutation stream as everything else: a
// replayed MutAddZone must make the TLDs creatable exactly where the original
// did, so records after it apply cleanly.
func TestAddZoneReplays(t *testing.T) {
	cap := &captureJournal{}
	clock := testClock()
	src := NewStore(clock)
	src.SetJournal(cap)
	src.AddRegistrar(model.Registrar{IANAID: 1000, Name: "Test Registrar"})
	if _, err := src.Create("before.com", 1000, 1); err != nil {
		t.Fatal(err)
	}
	if err := src.AddZone(nordicZone()); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Create("after.se", 1000, 1); err != nil {
		t.Fatal(err)
	}

	replayed := NewStore(testClock())
	for _, m := range cap.records {
		if err := replayed.Apply(m); err != nil {
			t.Fatalf("Apply(%s): %v", m.Kind, err)
		}
	}
	if z, ok := replayed.ZoneOf("se"); !ok || z.Name != "nordic" || z.Policy != zone.PolicyInstant {
		t.Fatalf("replayed store ZoneOf(se) = %+v, %v", z, ok)
	}
	for _, name := range []string{"before.com", "after.se"} {
		if _, err := replayed.Get(name); err != nil {
			t.Errorf("replayed store missing %s: %v", name, err)
		}
	}

	// The batch path must honour the same ordering barrier.
	batched := NewStore(testClock())
	if err := batched.ApplyBatch(cap.records); err != nil {
		t.Fatal(err)
	}
	if _, err := batched.Get("after.se"); err != nil {
		t.Errorf("ApplyBatch lost the post-zone create: %v", err)
	}
	if !batched.HostsTLD("nu") {
		t.Error("ApplyBatch lost the zone")
	}
}

// MutAddZone commits under the zone leaf lock, never inside a shard
// sequence — the parallel replayer routes it through its barrier and the
// shard appliers must refuse it outright.
func TestApplyShardSequenceRejectsAddZone(t *testing.T) {
	s, _ := testStore(t)
	_, err := s.ApplyShardSequence(0, []SeqMutation{
		{Seq: 1, M: Mutation{Kind: MutAddZone, Zone: nordicZone()}},
	})
	if err == nil {
		t.Fatal("ApplyShardSequence accepted a MutAddZone record")
	}
}

// One store, two zones, one deletion day: each zone's runner must see only
// its own names, together covering the whole bucket.
func TestZoneScopedDropQueues(t *testing.T) {
	s, _ := testStore(t)
	if err := s.AddZone(nordicZone()); err != nil {
		t.Fatal(err)
	}
	day := simtime.Day{Year: 2018, Month: time.February, Dom: 1}
	seed := func(name string) {
		t.Helper()
		created := time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
		updated := time.Date(2018, 1, 10, 14, 0, 0, 0, time.UTC)
		expiry := time.Date(2017, 12, 1, 10, 0, 0, 0, time.UTC)
		if _, err := s.SeedAt(name, 1000, created, updated, expiry, model.StatusPendingDelete, day); err != nil {
			t.Fatal(err)
		}
	}
	seed("alpha.com")
	seed("beta.net")
	seed("gamma.se")
	seed("delta.nu")

	unscoped := NewDropRunner(s, DefaultDropConfig())
	if q := unscoped.BuildQueue(day); len(q) != 4 {
		t.Fatalf("unscoped queue has %d entries, want 4", len(q))
	}

	core, err := NewZoneDropRunner(s, zone.Default())
	if err != nil {
		t.Fatal(err)
	}
	nordic, err := NewZoneDropRunner(s, nordicZone())
	if err != nil {
		t.Fatal(err)
	}
	names := func(q []QueueEntry) map[string]bool {
		m := make(map[string]bool, len(q))
		for _, e := range q {
			m[e.Name] = true
		}
		return m
	}
	cq, nq := names(core.BuildQueue(day)), names(nordic.BuildQueue(day))
	if len(cq) != 2 || !cq["alpha.com"] || !cq["beta.net"] {
		t.Fatalf("core queue = %v", cq)
	}
	if len(nq) != 2 || !nq["gamma.se"] || !nq["delta.nu"] {
		t.Fatalf("nordic queue = %v", nq)
	}

	if _, err := NewZoneDropRunner(s, zone.Config{Name: "ghost", TLDs: []model.TLD{"io"}, Policy: zone.PolicyPaced}); err == nil {
		t.Error("runner for an uninstalled zone accepted")
	}
}
