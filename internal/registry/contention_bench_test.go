package registry

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"dropzero/internal/loadgen"
	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// newContentionStore builds a store with a live registered population, so
// the contended operations run against realistically loaded shard maps, not
// empty ones.
func newContentionStore(b *testing.B, shards int) (*Store, simtime.Day) {
	b.Helper()
	day := simtime.Day{Year: 2018, Month: time.March, Dom: 1}
	clock := simtime.NewSimClock(day.At(19, 0, 0))
	s := NewStoreWithShards(clock, shards)
	for r := 0; r < 8; r++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + r, Name: fmt.Sprintf("Bench %d", r)})
	}
	created := day.AddDays(-400).At(3, 0, 0)
	for i := 0; i < 10_000; i++ {
		if _, err := s.SeedAt(fmt.Sprintf("bench-live%05d.com", i), 1000+i%8,
			created, created, created.AddDate(2, 0, 0), model.StatusActive, simtime.Day{}); err != nil {
			b.Fatal(err)
		}
	}
	return s, day
}

// BenchmarkEPPCreateContention is the Drop-second hot path under full
// contention: every processor hammers the store with the check+create
// sequence a drop-catch registrar issues when names start deleting. With one
// shard every create serialises on a single mutex; with eight, creates on
// different names proceed in parallel and throughput should scale with cores
// (the spread is invisible at GOMAXPROCS=1 — run on a multicore host, as CI
// does for BENCH_4.json).
func BenchmarkEPPCreateContention(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, day := newContentionStore(b, shards)
			at := day.At(19, 0, 1)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				i := 0
				for pb.Next() {
					name := fmt.Sprintf("drop%d-%d.com", w, i)
					if avail, _ := s.Available(name); !avail {
						b.Errorf("%s unexpectedly taken", name)
					}
					if _, err := s.CreateAt(name, 1000+int(w%8), 1, at); err != nil {
						b.Errorf("create %s: %v", name, err)
					}
					if avail, _ := s.Available(name); avail {
						b.Errorf("%s still available after create", name)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkCreateCheckLatency drives the same check+create hot path through
// the closed-loop load driver, so the comparison across shard counts reports
// tail latency (p50/p95/p99) alongside throughput — the percentiles are what
// decide whether a racing create lands inside the deletion second.
func BenchmarkCreateCheckLatency(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			s, day := newContentionStore(b, shards)
			at := day.At(19, 0, 1)
			b.ResetTimer()
			res := loadgen.Run(8, b.N, func(i int) error {
				name := fmt.Sprintf("lg%08d.com", i)
				s.Available(name)
				_, err := s.CreateAt(name, 1000+i%8, 1, at)
				return err
			})
			b.StopTimer()
			if res.Errors != 0 {
				b.Fatalf("%d create errors", res.Errors)
			}
			b.ReportMetric(res.RPS(), "req/sec")
			b.ReportMetric(float64(res.P50().Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(res.P95().Nanoseconds()), "p95-ns")
			b.ReportMetric(float64(res.P99().Nanoseconds()), "p99-ns")
		})
	}
}
