package registry

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

func testClock() *simtime.SimClock {
	return simtime.NewSimClock(time.Date(2018, 1, 1, 12, 0, 0, 0, time.UTC))
}

func testStore(t *testing.T) (*Store, *simtime.SimClock) {
	t.Helper()
	clock := testClock()
	s := NewStore(clock)
	s.AddRegistrar(model.Registrar{IANAID: 1000, Name: "Test Registrar"})
	s.AddRegistrar(model.Registrar{IANAID: 1001, Name: "Other Registrar"})
	return s, clock
}

func TestCreateAndGet(t *testing.T) {
	s, clock := testStore(t)
	d, err := s.Create("example.com", 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID == 0 || d.Name != "example.com" || d.TLD != model.COM {
		t.Fatalf("created domain wrong: %+v", d)
	}
	if !d.Created.Equal(simtime.Trunc(clock.Now())) {
		t.Fatalf("Created = %v, want clock time", d.Created)
	}
	if want := d.Created.AddDate(2, 0, 0); !d.Expiry.Equal(want) {
		t.Fatalf("Expiry = %v, want %v", d.Expiry, want)
	}
	got, err := s.Get("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != d.ID {
		t.Fatalf("Get returned different domain: %+v", got)
	}
	byID, err := s.GetByID(d.ID)
	if err != nil || byID.Name != "example.com" {
		t.Fatalf("GetByID: %+v, %v", byID, err)
	}
}

func TestCreateDuplicateFails(t *testing.T) {
	s, _ := testStore(t)
	if _, err := s.Create("example.com", 1000, 1); err != nil {
		t.Fatal(err)
	}
	_, err := s.Create("example.com", 1001, 1)
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v, want ErrExists", err)
	}
}

func TestCreateValidation(t *testing.T) {
	s, _ := testStore(t)
	cases := []struct {
		name  string
		years int
		want  error
	}{
		{"example.org", 1, ErrUnknownTLD},
		{"noext", 1, ErrUnknownTLD},
		{".com", 1, ErrBadName},
		{"-bad.com", 1, ErrBadName},
		{"bad-.com", 1, ErrBadName},
		{"UPPER.com", 1, ErrBadName},
		{"ok.com", 0, ErrBadName},
		{"ok.com", 11, ErrBadName},
	}
	for _, c := range cases {
		if _, err := s.Create(c.name, 1000, c.years); !errors.Is(err, c.want) {
			t.Errorf("Create(%q, %d) = %v, want %v", c.name, c.years, err, c.want)
		}
	}
	if _, err := s.Create("ok.com", 999, 1); !errors.Is(err, ErrUnknownRegistrar) {
		t.Errorf("unknown registrar: %v", err)
	}
}

func TestCreateReturnsCopy(t *testing.T) {
	s, _ := testStore(t)
	d, _ := s.Create("example.com", 1000, 1)
	d.Name = "mutated.com"
	got, _ := s.Get("example.com")
	if got == nil || got.Name != "example.com" {
		t.Fatal("store was mutated through returned pointer")
	}
}

func TestAvailable(t *testing.T) {
	s, _ := testStore(t)
	avail, err := s.Available("example.com")
	if err != nil || !avail {
		t.Fatalf("Available before create: %v, %v", avail, err)
	}
	s.Create("example.com", 1000, 1)
	avail, err = s.Available("example.com")
	if err != nil || avail {
		t.Fatalf("Available after create: %v, %v", avail, err)
	}
	if _, err := s.Available("bad domain.com"); !errors.Is(err, ErrBadName) {
		t.Fatalf("Available(bad) = %v", err)
	}
}

func TestTouchUpdatesTimestamp(t *testing.T) {
	s, clock := testStore(t)
	s.Create("example.com", 1000, 1)
	clock.Advance(time.Hour)
	if err := s.Touch("example.com", 1000); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("example.com")
	if !d.Updated.Equal(simtime.Trunc(clock.Now())) {
		t.Fatalf("Updated = %v, want %v", d.Updated, clock.Now())
	}
	if err := s.Touch("example.com", 1001); !errors.Is(err, ErrWrongRegistrar) {
		t.Fatalf("Touch by wrong registrar: %v", err)
	}
	if err := s.Touch("missing.com", 1000); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Touch missing: %v", err)
	}
}

func TestRenewExtendsExpiry(t *testing.T) {
	s, _ := testStore(t)
	d, _ := s.Create("example.com", 1000, 1)
	if err := s.Renew("example.com", 1000, 2); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get("example.com")
	if want := d.Expiry.AddDate(2, 0, 0); !got.Expiry.Equal(want) {
		t.Fatalf("Expiry = %v, want %v", got.Expiry, want)
	}
	if err := s.Renew("example.com", 1001, 1); !errors.Is(err, ErrWrongRegistrar) {
		t.Fatalf("Renew wrong registrar: %v", err)
	}
}

func TestIDsIncreaseWithCreation(t *testing.T) {
	s, clock := testStore(t)
	var last uint64
	for i := 0; i < 10; i++ {
		d, err := s.Create(fmt.Sprintf("domain%d.com", i), 1000, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d.ID <= last {
			t.Fatalf("ID %d not increasing after %d", d.ID, last)
		}
		last = d.ID
		clock.Advance(time.Second)
	}
}

func TestMarkRedemptionAndPendingDelete(t *testing.T) {
	s, clock := testStore(t)
	s.Create("example.com", 1000, 1)
	at := clock.Now().Add(time.Hour)
	if err := s.MarkRedemption("example.com", at); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("example.com")
	if d.Status != model.StatusRedemption || !d.Updated.Equal(simtime.Trunc(at)) {
		t.Fatalf("after MarkRedemption: %+v", d)
	}
	day := simtime.DayOf(clock.Now()).AddDays(35)
	if err := s.MarkPendingDelete("example.com", time.Time{}, day); err != nil {
		t.Fatal(err)
	}
	d, _ = s.Get("example.com")
	if d.Status != model.StatusPendingDelete || d.DeleteDay != day {
		t.Fatalf("after MarkPendingDelete: %+v", d)
	}
	// Updated must be preserved when zero time passed.
	if !d.Updated.Equal(simtime.Trunc(at)) {
		t.Fatalf("Updated changed: %v", d.Updated)
	}
}

func TestPendingDeletionsWindow(t *testing.T) {
	s, clock := testStore(t)
	base := simtime.DayOf(clock.Now())
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("d%d.com", i)
		s.Create(name, 1000, 1)
		s.MarkPendingDelete(name, time.Time{}, base.AddDays(i))
	}
	got := s.PendingDeletions(base, 5)
	if len(got) != 5 {
		t.Fatalf("PendingDeletions returned %d, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if b.DeleteDay.Before(a.DeleteDay) {
			t.Fatal("results not sorted by delete day")
		}
		if a.DeleteDay == b.DeleteDay && a.Name > b.Name {
			t.Fatal("results not sorted by name within day")
		}
	}
}

func TestPurgeLifecycleChecks(t *testing.T) {
	s, clock := testStore(t)
	s.Create("active.com", 1000, 1)
	if _, err := s.purge("active.com", clock.Now(), 0); !errors.Is(err, ErrNotPendingDelete) {
		t.Fatalf("purge active: %v", err)
	}
	if _, err := s.purge("missing.com", clock.Now(), 0); !errors.Is(err, ErrNotFound) {
		t.Fatalf("purge missing: %v", err)
	}
}

func TestPurgeRecordsGroundTruthAndFreesName(t *testing.T) {
	s, clock := testStore(t)
	d, _ := s.Create("example.com", 1000, 1)
	day := simtime.DayOf(clock.Now())
	s.MarkPendingDelete("example.com", time.Time{}, day)
	at := day.At(19, 0, 7)
	ev, err := s.purge("example.com", at, 42)
	if err != nil {
		t.Fatal(err)
	}
	if ev.DomainID != d.ID || ev.Rank != 42 || !ev.Time.Equal(at) {
		t.Fatalf("event = %+v", ev)
	}
	if _, err := s.Get("example.com"); !errors.Is(err, ErrNotFound) {
		t.Fatal("domain still present after purge")
	}
	if _, err := s.GetByID(d.ID); !errors.Is(err, ErrNotFound) {
		t.Fatal("byID index still present after purge")
	}
	evs := s.Deletions(day)
	if len(evs) != 1 || evs[0].Name != "example.com" {
		t.Fatalf("Deletions = %+v", evs)
	}
	// The name is re-registrable now, with a new ID.
	nd, err := s.Create("example.com", 1001, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nd.ID <= d.ID {
		t.Fatalf("re-registration ID %d not greater than %d", nd.ID, d.ID)
	}
}

func TestSeedAtPreservesFields(t *testing.T) {
	s, _ := testStore(t)
	created := time.Date(2014, 3, 1, 4, 5, 6, 0, time.UTC)
	updated := time.Date(2017, 11, 27, 6, 30, 12, 0, time.UTC)
	expiry := time.Date(2017, 10, 20, 4, 5, 6, 0, time.UTC)
	day := simtime.Day{Year: 2018, Month: time.January, Dom: 2}
	d, err := s.SeedAt("seeded.com", 1000, created, updated, expiry, model.StatusPendingDelete, day)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Created.Equal(created) || !d.Updated.Equal(updated) || !d.Expiry.Equal(expiry) {
		t.Fatalf("seeded timestamps wrong: %+v", d)
	}
	if d.Status != model.StatusPendingDelete || d.DeleteDay != day {
		t.Fatalf("seeded status wrong: %+v", d)
	}
}

func TestRegistrarsSorted(t *testing.T) {
	s, _ := testStore(t)
	rs := s.Registrars()
	if len(rs) != 2 || rs[0].IANAID != 1000 || rs[1].IANAID != 1001 {
		t.Fatalf("Registrars = %+v", rs)
	}
	if _, ok := s.Registrar(1000); !ok {
		t.Fatal("Registrar(1000) missing")
	}
	if _, ok := s.Registrar(555); ok {
		t.Fatal("Registrar(555) found")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s, _ := testStore(t)
	for i := 0; i < 5; i++ {
		s.Create(fmt.Sprintf("d%d.com", i), 1000, 1)
	}
	n := 0
	s.Each(func(*model.Domain) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("Each visited %d, want 3", n)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	s, _ := testStore(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				name := fmt.Sprintf("g%d-i%d.com", g, i)
				if _, err := s.Create(name, 1000, 1); err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				if _, err := s.Get(name); err != nil {
					t.Errorf("get %s: %v", name, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Count() != 800 {
		t.Fatalf("Count = %d, want 800", s.Count())
	}
}

// recordingObserver captures registry events for assertions.
type recordingObserver struct {
	purged      []string
	transitions []string
}

func (r *recordingObserver) DomainPurged(ev model.DeletionEvent, registrarID int) {
	r.purged = append(r.purged, fmt.Sprintf("%s@%d", ev.Name, registrarID))
}

func (r *recordingObserver) DomainTransitioned(name string, registrarID int, from, to model.Status) {
	r.transitions = append(r.transitions, fmt.Sprintf("%s:%v->%v", name, from, to))
}

func TestStoreObserverEvents(t *testing.T) {
	s, clock := testStore(t)
	obs := &recordingObserver{}
	s.SetObserver(obs)

	s.Create("watched.com", 1000, 1)
	if err := s.MarkRedemption("watched.com", clock.Now()); err != nil {
		t.Fatal(err)
	}
	day := simtime.DayOf(clock.Now()).AddDays(35)
	if err := s.MarkPendingDelete("watched.com", time.Time{}, day); err != nil {
		t.Fatal(err)
	}
	if _, err := s.purge("watched.com", day.At(19, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if len(obs.transitions) != 2 {
		t.Fatalf("transitions = %v", obs.transitions)
	}
	if obs.transitions[0] != "watched.com:active->redemptionPeriod" {
		t.Fatalf("first transition = %q", obs.transitions[0])
	}
	if len(obs.purged) != 1 || obs.purged[0] != "watched.com@1000" {
		t.Fatalf("purged = %v", obs.purged)
	}

	// Removing the observer stops delivery.
	s.SetObserver(nil)
	s.Create("quiet.com", 1000, 1)
	s.MarkRedemption("quiet.com", clock.Now())
	if len(obs.transitions) != 2 {
		t.Fatalf("events after removal: %v", obs.transitions)
	}
}

// TestStoreObserverCanReadStore guards against deadlock: observers may call
// back into the store synchronously.
func TestStoreObserverCanReadStore(t *testing.T) {
	s, clock := testStore(t)
	s.Create("reader.com", 1000, 1)
	s.SetObserver(observerFunc(func() {
		if _, err := s.Get("reader.com"); err != nil {
			t.Errorf("observer read: %v", err)
		}
	}))
	if err := s.MarkRedemption("reader.com", clock.Now()); err != nil {
		t.Fatal(err)
	}
}

// observerFunc adapts a closure to Observer for the reentrancy test.
type observerFunc func()

func (f observerFunc) DomainPurged(model.DeletionEvent, int)                      { f() }
func (f observerFunc) DomainTransitioned(string, int, model.Status, model.Status) { f() }

func TestAuthInfoAccess(t *testing.T) {
	s, _ := testStore(t)
	s.Create("auth.com", 1000, 1)
	code, err := s.AuthInfo("auth.com", 1000)
	if err != nil || code == "" {
		t.Fatalf("sponsor read: %q %v", code, err)
	}
	if _, err := s.AuthInfo("auth.com", 1001); !errors.Is(err, ErrWrongRegistrar) {
		t.Fatalf("foreign read: %v", err)
	}
	if _, err := s.AuthInfo("missing.com", 1000); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing read: %v", err)
	}
}

func TestTransfer(t *testing.T) {
	s, clock := testStore(t)
	s.Create("moving.com", 1000, 1)
	code, _ := s.AuthInfo("moving.com", 1000)

	if err := s.Transfer("moving.com", 1001, "wrong"); !errors.Is(err, ErrBadAuthInfo) {
		t.Fatalf("wrong code: %v", err)
	}
	if err := s.Transfer("moving.com", 1000, code); !errors.Is(err, ErrWrongRegistrar) {
		t.Fatalf("self transfer: %v", err)
	}
	if err := s.Transfer("moving.com", 999, code); !errors.Is(err, ErrUnknownRegistrar) {
		t.Fatalf("unknown gaining registrar: %v", err)
	}
	clock.Advance(time.Hour)
	if err := s.Transfer("moving.com", 1001, code); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Get("moving.com")
	if d.RegistrarID != 1001 {
		t.Fatalf("sponsor = %d", d.RegistrarID)
	}
	if !d.Updated.Equal(simtime.Trunc(clock.Now())) {
		t.Fatalf("Updated = %v", d.Updated)
	}
	// The code rotates: the old one no longer works for a transfer back.
	if err := s.Transfer("moving.com", 1000, code); !errors.Is(err, ErrBadAuthInfo) {
		t.Fatalf("stale code: %v", err)
	}
	newCode, err := s.AuthInfo("moving.com", 1001)
	if err != nil || newCode == code {
		t.Fatalf("code not rotated: %q %v", newCode, err)
	}
}

func TestTransferStatusProhibits(t *testing.T) {
	s, clock := testStore(t)
	s.Create("stuck.com", 1000, 1)
	code, _ := s.AuthInfo("stuck.com", 1000)
	s.MarkRedemption("stuck.com", clock.Now())
	if err := s.Transfer("stuck.com", 1001, code); !errors.Is(err, ErrStatusProhibits) {
		t.Fatalf("redemption transfer: %v", err)
	}
}

func (r *recordingObserver) DomainTransferred(name string, losingID, gainingID int) {
	r.transitions = append(r.transitions, fmt.Sprintf("%s:xfer %d->%d", name, losingID, gainingID))
}

func (f observerFunc) DomainTransferred(string, int, int) { f() }

func TestTransferNotifiesObserver(t *testing.T) {
	s, _ := testStore(t)
	obs := &recordingObserver{}
	s.SetObserver(obs)
	s.Create("note.com", 1000, 1)
	code, _ := s.AuthInfo("note.com", 1000)
	if err := s.Transfer("note.com", 1001, code); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range obs.transitions {
		if tr == "note.com:xfer 1000->1001" {
			found = true
		}
	}
	if !found {
		t.Fatalf("transfer event missing: %v", obs.transitions)
	}
}

func TestStatusCounts(t *testing.T) {
	s, clock := testStore(t)
	s.Create("a.com", 1000, 1)
	s.Create("b.com", 1000, 1)
	s.MarkRedemption("b.com", clock.Now())
	counts := s.StatusCounts()
	if counts[model.StatusActive] != 1 || counts[model.StatusRedemption] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

// TestGenerationBumpsOnEveryMutator pins the serving-layer cache contract:
// every successful mutation of observable state bumps Generation() (so
// generation-keyed response caches flush), reads never bump it, and failed
// operations leave it untouched (so caches are not needlessly invalidated).
func TestGenerationBumpsOnEveryMutator(t *testing.T) {
	s, clock := testStore(t)
	day := simtime.DayOf(clock.Now())

	// bumped asserts fn increases the generation by exactly n.
	bumped := func(what string, n uint64, fn func()) {
		t.Helper()
		before := s.Generation()
		fn()
		if got := s.Generation() - before; got != n {
			t.Fatalf("%s: generation moved by %d, want %d", what, got, n)
		}
	}

	bumped("AddRegistrar", 1, func() { s.AddRegistrar(model.Registrar{IANAID: 1002}) })
	bumped("Create", 1, func() {
		if _, err := s.Create("gen.com", 1000, 1); err != nil {
			t.Fatal(err)
		}
	})
	bumped("SeedAt", 1, func() {
		now := clock.Now()
		if _, err := s.SeedAt("genseed.com", 1000, now.AddDate(-1, 0, 0), now, now.AddDate(1, 0, 0), model.StatusActive, simtime.Day{}); err != nil {
			t.Fatal(err)
		}
	})
	bumped("Touch", 1, func() {
		if err := s.Touch("gen.com", 1000); err != nil {
			t.Fatal(err)
		}
	})
	bumped("Renew", 1, func() {
		if err := s.Renew("gen.com", 1000, 1); err != nil {
			t.Fatal(err)
		}
	})
	auth, err := s.AuthInfo("gen.com", 1000)
	if err != nil {
		t.Fatal(err)
	}
	bumped("Transfer", 1, func() {
		if err := s.Transfer("gen.com", 1001, auth); err != nil {
			t.Fatal(err)
		}
	})
	bumped("MarkRedemption", 1, func() {
		if err := s.MarkRedemption("gen.com", clock.Now()); err != nil {
			t.Fatal(err)
		}
	})
	bumped("MarkPendingDelete", 1, func() {
		if err := s.MarkPendingDelete("gen.com", clock.Now(), day); err != nil {
			t.Fatal(err)
		}
	})
	bumped("purge", 1, func() {
		if _, err := s.purge("gen.com", clock.Now(), 0); err != nil {
			t.Fatal(err)
		}
	})

	// Reads must not bump.
	bumped("reads", 0, func() {
		s.Get("genseed.com")
		s.GetByID(1)
		s.Available("other.com")
		s.Registrar(1000)
		s.Registrars()
		s.PendingDeletions(day, 5)
		s.Deletions(day)
		s.Count()
		s.StatusCounts()
		s.Each(func(*model.Domain) bool { return true })
		s.Generation()
	})

	// Failed mutations must not bump.
	bumped("failed mutations", 0, func() {
		s.Create("genseed.com", 1000, 1)     // ErrExists
		s.Create("bad name!", 1000, 1)       // ErrBadName
		s.Create("orphan.com", 9999, 1)      // ErrUnknownRegistrar
		s.Touch("missing.com", 1000)         // ErrNotFound
		s.Touch("genseed.com", 1001)         // ErrWrongRegistrar
		s.Renew("missing.com", 1000, 1)      // ErrNotFound
		s.Transfer("missing.com", 1001, "x") // ErrNotFound
		s.Transfer("genseed.com", 1001, "x") // ErrBadAuthInfo
		s.MarkRedemption("missing.com", clock.Now())
		s.purge("genseed.com", clock.Now(), 0) // ErrNotPendingDelete
	})
}

// TestGenerationMonotonicUnderConcurrency drives mutators and Generation
// reads concurrently: the counter must be strictly monotonic from any single
// reader's point of view and end at exactly one bump per committed mutation.
func TestGenerationMonotonicUnderConcurrency(t *testing.T) {
	s, _ := testStore(t)
	start := s.Generation()
	const n = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		last := s.Generation()
		for {
			select {
			case <-stop:
				return
			default:
			}
			g := s.Generation()
			if g < last {
				t.Error("generation went backwards")
				return
			}
			last = g
		}
	}()
	var mw sync.WaitGroup
	for w := 0; w < 4; w++ {
		mw.Add(1)
		go func(w int) {
			defer mw.Done()
			for i := 0; i < n; i++ {
				if _, err := s.Create(fmt.Sprintf("gen-%d-%d.com", w, i), 1000, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	mw.Wait()
	close(stop)
	wg.Wait()
	if got := s.Generation() - start; got != 4*n {
		t.Fatalf("generation advanced by %d, want %d", got, 4*n)
	}
}
