package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

func TestNormalizeShardCount(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1},
		{2, 2},
		{3, 4},
		{4, 4},
		{5, 8},
		{16, 16},
		{100, 128},
		{MaxShards, MaxShards},
		{MaxShards + 1, MaxShards},
		{1 << 20, MaxShards},
	}
	for _, c := range cases {
		if got := normalizeShardCount(c.in); got != c.want {
			t.Errorf("normalizeShardCount(%d) = %d, want %d", c.in, got, c.want)
		}
	}
	// The auto default must be a usable power of two.
	n := normalizeShardCount(0)
	if n < 1 || n > MaxShards || n&(n-1) != 0 {
		t.Fatalf("auto shard count %d is not a power of two in [1, %d]", n, MaxShards)
	}
	if got := NewStoreWithShards(testClock(), 5).ShardCount(); got != 8 {
		t.Fatalf("ShardCount after NewStoreWithShards(5) = %d, want 8", got)
	}
}

// TestShardRoutingCoversAllShards seeds enough distinct names that every
// shard of a 16-shard store ends up owning registrations — a canary against
// a routing bug that collapses the hash onto a few shards.
func TestShardRoutingCoversAllShards(t *testing.T) {
	clock := testClock()
	s := NewStoreWithShards(clock, 16)
	s.AddRegistrar(model.Registrar{IANAID: 1000, Name: "R"})
	for i := 0; i < 600; i++ {
		if _, err := s.Create(fmt.Sprintf("route%04d.com", i), 1000, 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n := len(sh.domains)
		sh.mu.RUnlock()
		if n == 0 {
			t.Errorf("shard %d holds no registrations after 600 creates", i)
		}
	}
	if s.Count() != 600 {
		t.Fatalf("Count = %d, want 600", s.Count())
	}
}

// TestShardedStoreBasicOpsAt16 reruns the core single-domain operations on a
// deliberately over-sharded store: routing must be stable across Create,
// Get, GetByID, Touch, Transfer, lifecycle transitions and purge.
func TestShardedStoreBasicOpsAt16(t *testing.T) {
	clock := testClock()
	s := NewStoreWithShards(clock, 16)
	s.AddRegistrar(model.Registrar{IANAID: 1000, Name: "A"})
	s.AddRegistrar(model.Registrar{IANAID: 1001, Name: "B"})

	d, err := s.Create("crossshard.com", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get("crossshard.com"); err != nil || got.ID != d.ID {
		t.Fatalf("Get: %+v, %v", got, err)
	}
	if got, err := s.GetByID(d.ID); err != nil || got.Name != "crossshard.com" {
		t.Fatalf("GetByID: %+v, %v", got, err)
	}
	code, err := s.AuthInfo("crossshard.com", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Transfer("crossshard.com", 1001, code); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkRedemption("crossshard.com", clock.Now()); err != nil {
		t.Fatal(err)
	}
	day := simtime.DayOf(clock.Now()).AddDays(5)
	if err := s.MarkPendingDelete("crossshard.com", time.Time{}, day); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingDeletions(day, 1); len(got) != 1 || got[0].Name != "crossshard.com" {
		t.Fatalf("PendingDeletions = %+v", got)
	}
	if _, err := s.purge("crossshard.com", day.At(19, 0, 0), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("crossshard.com"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after purge: %v", err)
	}
	if _, err := s.GetByID(d.ID); !errors.Is(err, ErrNotFound) {
		t.Fatalf("GetByID after purge: %v", err)
	}
	if n := indexSize(s); n != 0 {
		t.Fatalf("index holds %d entries after purge, want 0", n)
	}
}

// TestConcurrentCreatesDuringDrop races EPP-style creates against a running
// Drop on a multi-shard store under -race: while the runner purges the day's
// queue in order, goroutines hammer Create on every queued name and on
// unrelated names. First-come-first-served must hold exactly — every purged
// name is won by at most one creator, every winner's create strictly follows
// the purge, and the store's indexes stay consistent.
func TestConcurrentCreatesDuringDrop(t *testing.T) {
	day := simtime.Day{Year: 2018, Month: time.March, Dom: 1}
	clock := simtime.NewSimClock(day.At(18, 59, 0))
	s := NewStoreWithShards(clock, 8)
	for r := 0; r < 4; r++ {
		s.AddRegistrar(model.Registrar{IANAID: 1000 + r, Name: fmt.Sprintf("R%d", r)})
	}
	NewLifecycle(s, DefaultLifecycleConfig())

	const nPending = 120
	names := make([]string, nPending)
	for i := range names {
		names[i] = fmt.Sprintf("race%04d.com", i)
		updated := day.AddDays(-35).At(6, 30, i%60)
		if _, err := s.SeedAt(names[i], 1000+i%4, updated.AddDate(-2, 0, 0), updated,
			updated.AddDate(0, 0, -30), model.StatusPendingDelete, day); err != nil {
			t.Fatal(err)
		}
	}

	runner := NewDropRunner(s, DropConfig{StartHour: 19, BaseRatePerSec: 10000})
	sched := runner.Schedule(day, rand.New(rand.NewSource(1)))
	if len(sched) != nPending {
		t.Fatalf("scheduled %d deletions, want %d", len(sched), nPending)
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	wins := make([]int, len(names)) // creator goroutine per name, -1 = none
	winsMu := sync.Mutex{}

	// Four racing creators, one per registrar, each sweeping the whole name
	// list repeatedly plus churning its own unrelated names.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for round := 0; round < 50; round++ {
				for i, name := range names {
					if _, err := s.CreateAt(name, 1000+g, 1, day.At(19, 0, 1)); err == nil {
						winsMu.Lock()
						wins[i]++
						winsMu.Unlock()
					} else if !errors.Is(err, ErrExists) {
						t.Errorf("create %s: %v", name, err)
					}
				}
				churn := fmt.Sprintf("churn-%d-%d.com", g, round)
				if _, err := s.CreateAt(churn, 1000+g, 1, day.At(19, 0, 1)); err != nil {
					t.Errorf("churn create %s: %v", churn, err)
				}
				s.Available(names[round%len(names)])
				s.Count()
			}
		}(g)
	}
	// The Drop itself, applying the schedule in deletion order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for _, sc := range sched {
			if _, err := runner.Apply(sc); err != nil {
				t.Errorf("apply %s: %v", sc.Name, err)
			}
		}
	}()
	close(start)
	wg.Wait()

	// FCFS: at most one create ever succeeded per purged name (rounds keep
	// retrying, so a second success would mean double registration).
	for i, n := range wins {
		if n > 1 {
			t.Errorf("%s was won %d times, want at most once", names[i], n)
		}
	}
	if evs := s.Deletions(day); len(evs) != nPending {
		t.Fatalf("Deletions recorded %d events, want %d", len(evs), nPending)
	}
	if n := indexSize(s); n != s.Count() {
		t.Fatalf("due index holds %d entries, store holds %d", n, s.Count())
	}
	// Every queued name must have been purged and is either unclaimed or
	// sponsored by the single winner.
	counts := s.StatusCounts()
	if counts[model.StatusPendingDelete] != 0 {
		t.Fatalf("still %d pendingDelete after the Drop", counts[model.StatusPendingDelete])
	}
}
