package registry

import (
	"slices"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// duePolicy computes the UTC day a registration's next lifecycle transition
// becomes due — the key its due-index bucket is filed under. The zero value
// is the safe default used before a Lifecycle is attached: it anchors
// autoRenew and redemption domains at the *start* of their grace and
// redemption windows (grace and redemption lengths of zero), so buckets can
// only be earlier than the true due day, never later. An early bucket merely
// re-examines the domain on sweeps until it really is due; a late bucket
// would delay transitions, which is why NewLifecycle and SpreadGraceDays
// install the exact policy derived from the active LifecycleConfig.
type duePolicy struct {
	redemptionDays   int
	graceDays        map[int]int
	defaultGraceDays int
	// perTLD overrides the day-length parameters for TLDs operated by
	// non-default zones (each zone runs its own lifecycle clock). nil — the
	// pre-federation common case — means every TLD uses the base values
	// above, and dueDay takes the exact legacy path. Entries have nil
	// perTLD themselves (one level of zoning, no recursion).
	perTLD map[model.TLD]*duePolicy
}

// dueDay returns the bucket day for d's current state: expiry day for
// active, grace-end day for autoRenew, redemption-end day for redemption and
// the scheduled DeleteDay for pendingDelete. The parameters come from the
// zone operating d's TLD.
func (p duePolicy) dueDay(d *model.Domain) simtime.Day {
	if p.perTLD != nil {
		if zp, ok := p.perTLD[d.TLD]; ok {
			return zp.dueDay(d)
		}
	}
	switch d.Status {
	case model.StatusActive:
		return simtime.DayOf(d.Expiry)
	case model.StatusAutoRenew:
		g := p.defaultGraceDays
		if v, ok := p.graceDays[d.RegistrarID]; ok {
			g = v
		}
		return simtime.DayOf(d.Expiry.AddDate(0, 0, g))
	case model.StatusRedemption:
		return simtime.DayOf(d.Updated.AddDate(0, 0, p.redemptionDays))
	default:
		return d.DeleteDay
	}
}

// dueIndex is one lifecycle state's time-bucketed secondary index: every
// live registration in that state, bucketed by due day. Buckets key on the
// registry object ID for O(1) removal; bucket-internal iteration order is Go
// map order, so every consumer imposes its own deterministic sort. days
// mirrors the non-empty bucket keys in ascending order, which is what makes
// "walk everything due through day D" O(due work) instead of O(store).
type dueIndex struct {
	buckets map[simtime.Day]map[uint64]*model.Domain
	days    []simtime.Day
}

func (ix *dueIndex) add(day simtime.Day, d *model.Domain) {
	if ix.buckets == nil {
		ix.buckets = make(map[simtime.Day]map[uint64]*model.Domain)
	}
	b, ok := ix.buckets[day]
	if !ok {
		b = make(map[uint64]*model.Domain)
		ix.buckets[day] = b
		if i, found := slices.BinarySearchFunc(ix.days, day, simtime.Day.Compare); !found {
			ix.days = slices.Insert(ix.days, i, day)
		}
	}
	b[d.ID] = d
}

func (ix *dueIndex) remove(day simtime.Day, id uint64) {
	b, ok := ix.buckets[day]
	if !ok {
		return
	}
	delete(b, id)
	if len(b) == 0 {
		delete(ix.buckets, day)
		if i, found := slices.BinarySearchFunc(ix.days, day, simtime.Day.Compare); found {
			ix.days = slices.Delete(ix.days, i, i+1)
		}
	}
}

// count returns the size of day's bucket.
func (ix *dueIndex) count(day simtime.Day) int { return len(ix.buckets[day]) }

// through calls fn for every registration whose bucket day is on or before
// limit. fn must not add or remove index entries.
func (ix *dueIndex) through(limit simtime.Day, fn func(*model.Domain)) {
	for _, day := range ix.days {
		if day.Compare(limit) > 0 {
			return
		}
		for _, d := range ix.buckets[day] {
			fn(d)
		}
	}
}

// eachBucket visits every non-empty bucket with day in [from, to), in
// ascending day order. fn must not add or remove index entries.
func (ix *dueIndex) eachBucket(from, to simtime.Day, fn func(simtime.Day, map[uint64]*model.Domain)) {
	i, _ := slices.BinarySearchFunc(ix.days, from, simtime.Day.Compare)
	for ; i < len(ix.days); i++ {
		day := ix.days[i]
		if day.Compare(to) >= 0 {
			return
		}
		fn(day, ix.buckets[day])
	}
}
