package registry

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// DropConfig parameterises the daily deletion process. Verisign does not
// document the real one; the values here reproduce the observable behaviour
// the paper reports: the Drop starts at 19:00 UTC (2 pm Eastern), lasts
// roughly an hour depending on queue length, deletes domains in
// (lastUpdated, domainID) order across .com and .net combined, and does not
// proceed at a perfectly constant rate.
type DropConfig struct {
	// StartHour/StartMinute is the local start of the Drop in UTC.
	StartHour, StartMinute int
	// BaseRatePerSec is the average number of deletions processed per
	// second; fractional rates are honoured by carrying the remainder
	// across seconds. 24/s deletes 86 k domains in an hour.
	BaseRatePerSec float64
	// RateJitter is the fractional per-second variation of the rate,
	// in [0, 1). 0.3 means each second processes 70–130 % of the base rate.
	RateJitter float64
	// DayRateSpread varies the whole day's processing rate: each Drop runs
	// at base · U(1−spread, 1+spread/2). The paper's Drop durations do not
	// scale linearly with volume (18 Jan ran until 20:49, 11 Feb ended
	// 19:56), which a fixed rate cannot produce.
	DayRateSpread float64
	// StallProb is the per-second probability that the process stalls for
	// StallSeconds (batch boundaries, registry housekeeping). Stalls are one
	// source of the imperfect linearity visible in the paper's Figure 4a.
	StallProb    float64
	StallSeconds int
}

// DefaultDropConfig returns the configuration used by the experiments.
func DefaultDropConfig() DropConfig {
	return DropConfig{
		StartHour:      19,
		BaseRatePerSec: 25,
		RateJitter:     0.3,
		DayRateSpread:  0.2,
		StallProb:      0.004,
		StallSeconds:   8,
	}
}

// QueueEntry is one position in a day's deletion queue.
type QueueEntry struct {
	Name    string
	TLD     model.TLD
	ID      uint64
	Updated time.Time
}

// DropRunner executes the Drop for a Store.
type DropRunner struct {
	store *Store
	cfg   DropConfig
}

// NewDropRunner returns a runner over store with cfg (zero cfg gets
// defaults).
func NewDropRunner(store *Store, cfg DropConfig) *DropRunner {
	if cfg.BaseRatePerSec == 0 {
		cfg = DefaultDropConfig()
	}
	return &DropRunner{store: store, cfg: cfg}
}

// Config returns the active configuration.
func (r *DropRunner) Config() DropConfig { return r.cfg }

// BuildQueue assembles day's deletion queue: every pendingDelete domain
// scheduled for day, .com and .net combined, ordered by the registration's
// last-updated timestamp with the domain ID as the tie breaker. This is the
// predictable order the paper infers in §4.1.
//
// The queue is read straight out of day's pending-delete bucket — one
// exactly-sized allocation and an O(k log k) sort, independent of how many
// million other registrations the store holds.
func (r *DropRunner) BuildQueue(day simtime.Day) []QueueEntry {
	if r.store.useScan() {
		return r.buildQueueScan(day)
	}
	n := r.store.pendingCountOn(day)
	if n == 0 {
		return nil
	}
	q := make([]QueueEntry, 0, n)
	r.store.eachPendingOn(day, func(d *model.Domain) {
		q = append(q, QueueEntry{Name: d.Name, TLD: d.TLD, ID: d.ID, Updated: d.Updated})
	})
	slices.SortFunc(q, func(a, b QueueEntry) int {
		if c := a.Updated.Compare(b.Updated); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return q
}

// Scheduled is one planned deletion: the instant rank Rank's domain will be
// purged. The schedule is the registry's internal plan — exactly the
// information drop-catch services pay to predict.
type Scheduled struct {
	Name string
	TLD  model.TLD
	Time time.Time
	Rank int
}

// Schedule plans day's Drop without executing it: the queue in (lastUpdated,
// domainID) order with second-precision deletion instants paced by the
// configured rate, day-level rate variation, per-second jitter and stalls.
func (r *DropRunner) Schedule(day simtime.Day, rng *rand.Rand) []Scheduled {
	return r.ScheduleQueue(day, r.BuildQueue(day), rng)
}

// ScheduleQueue is Schedule over an explicit, already-ordered queue. Crash
// recovery uses it to re-derive a partially executed Drop's original plan:
// the purged prefix is reconstructed from the deletion archive, the
// remaining entries come from BuildQueue on the recovered store, and —
// because the pacing draws depend only on the queue *length* and rng — the
// schedule (and therefore every remaining deletion instant) comes out
// exactly as the uninterrupted run would have produced it.
func (r *DropRunner) ScheduleQueue(day simtime.Day, queue []QueueEntry, rng *rand.Rand) []Scheduled {
	out := make([]Scheduled, 0, len(queue))
	t := day.At(r.cfg.StartHour, r.cfg.StartMinute, 0)
	i := 0
	carry := 0.0
	dayRate := r.cfg.BaseRatePerSec
	if r.cfg.DayRateSpread > 0 {
		dayRate *= 1 - r.cfg.DayRateSpread + 1.5*r.cfg.DayRateSpread*rng.Float64()
	}
	for i < len(queue) {
		if r.cfg.StallProb > 0 && rng.Float64() < r.cfg.StallProb {
			t = t.Add(time.Duration(r.cfg.StallSeconds) * time.Second)
		}
		jitter := 1 + r.cfg.RateJitter*(2*rng.Float64()-1)
		want := dayRate*jitter + carry
		n := int(want)
		carry = want - float64(n)
		for k := 0; k < n && i < len(queue); k++ {
			out = append(out, Scheduled{Name: queue[i].Name, TLD: queue[i].TLD, Time: t, Rank: i})
			i++
		}
		t = t.Add(time.Second)
	}
	return out
}

// Apply purges one scheduled deletion, making the name available.
func (r *DropRunner) Apply(s Scheduled) (model.DeletionEvent, error) {
	ev, err := r.store.purge(s.Name, s.Time, s.Rank)
	if err != nil {
		return ev, fmt.Errorf("drop rank %d: %w", s.Rank, err)
	}
	return ev, nil
}

// Run executes day's Drop, purging every queued domain and returning the
// ground-truth deletion events in order. rng drives the pacing noise; pass a
// seeded source for reproducible runs.
//
// Run assigns second-precision deletion instants: several domains share each
// second (the registry processes tens of deletions per second), which is why
// the paper's envelope model sees multiple ranks per timestamp. Callers that
// need to interleave other work with the deletions (for example racing EPP
// agents against the Drop) should use Schedule and Apply directly.
func (r *DropRunner) Run(day simtime.Day, rng *rand.Rand) ([]model.DeletionEvent, error) {
	sched := r.Schedule(day, rng)
	events := make([]model.DeletionEvent, 0, len(sched))
	for _, s := range sched {
		ev, err := r.Apply(s)
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// EndTime returns the instant of the last deletion in events, or the zero
// time for an empty Drop.
func EndTime(events []model.DeletionEvent) time.Time {
	if len(events) == 0 {
		return time.Time{}
	}
	return events[len(events)-1].Time
}
