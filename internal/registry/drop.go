package registry

import (
	"cmp"
	"fmt"
	"math/rand"
	"slices"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
	"dropzero/internal/zone"
)

// DropConfig parameterises a zone's daily deletion process; it lives in the
// zone package (each zone carries its own) and is aliased here to keep the
// pre-federation registry API intact, along with the queue and schedule
// types the policies operate on.
type (
	DropConfig = zone.DropConfig
	QueueEntry = zone.QueueEntry
	Scheduled  = zone.Scheduled
)

// DefaultDropConfig returns the configuration used by the experiments.
func DefaultDropConfig() DropConfig { return zone.DefaultDropConfig() }

// DropRunner executes one zone's Drop for a Store. The legacy constructor
// runs the default .com/.net paced Drop; NewZoneDropRunner scopes a runner
// to an installed zone and its policy, so one store can drop several zones
// on independent clocks.
type DropRunner struct {
	store  *Store
	cfg    DropConfig
	policy zone.DropPolicy
	// scope is the zone's TLD membership set; nil means unscoped (the
	// pre-federation single-zone store, where the queue is the whole
	// pending bucket).
	scope map[model.TLD]bool
	// zoneName labels reports; empty for the legacy unscoped runner.
	zoneName string
}

// NewDropRunner returns an unscoped paced runner over store with cfg (zero
// cfg gets defaults) — the pre-federation Drop.
func NewDropRunner(store *Store, cfg DropConfig) *DropRunner {
	if cfg.BaseRatePerSec == 0 {
		cfg = DefaultDropConfig()
	}
	return &DropRunner{store: store, cfg: cfg, policy: zone.PacedOrdered{Config: cfg}}
}

// NewZoneDropRunner returns a runner scoped to z's TLDs, releasing under z's
// policy. z must be one of the store's installed zones.
func NewZoneDropRunner(store *Store, z zone.Config) (*DropRunner, error) {
	if _, ok := store.ZoneByName(z.Name); !ok {
		return nil, fmt.Errorf("registry: zone %q not installed", z.Name)
	}
	cfg := z.Drop
	if cfg.BaseRatePerSec == 0 && z.Policy != zone.PolicyInstant {
		cfg = DefaultDropConfig()
	}
	zc := z
	zc.Drop = cfg
	pol, err := zone.NewPolicy(zc)
	if err != nil {
		return nil, err
	}
	return &DropRunner{store: store, cfg: cfg, policy: pol, scope: z.TLDSet(), zoneName: z.Name}, nil
}

// Config returns the active configuration.
func (r *DropRunner) Config() DropConfig { return r.cfg }

// Policy returns the runner's release policy.
func (r *DropRunner) Policy() zone.DropPolicy { return r.policy }

// ZoneName returns the scoped zone's name ("" for the legacy unscoped
// runner).
func (r *DropRunner) ZoneName() string { return r.zoneName }

// inScope reports whether t belongs to this runner's zone.
func (r *DropRunner) inScope(t model.TLD) bool {
	return r.scope == nil || r.scope[t]
}

// BuildQueue assembles day's deletion queue: every pendingDelete domain of
// the runner's zone scheduled for day, its TLDs combined, ordered by the
// registration's last-updated timestamp with the domain ID as the tie
// breaker. This is the predictable order the paper infers in §4.1 (the
// randomized policy reorders it at schedule time, which is the point of
// that countermeasure).
//
// The queue is read straight out of day's pending-delete bucket — one
// exactly-sized allocation and an O(k log k) sort, independent of how many
// million other registrations the store holds.
func (r *DropRunner) BuildQueue(day simtime.Day) []QueueEntry {
	if r.store.useScan() {
		return r.buildQueueScan(day)
	}
	n := r.store.pendingCountOn(day)
	if n == 0 {
		return nil
	}
	q := make([]QueueEntry, 0, n)
	r.store.eachPendingOn(day, func(d *model.Domain) {
		if !r.inScope(d.TLD) {
			return
		}
		q = append(q, QueueEntry{Name: d.Name, TLD: d.TLD, ID: d.ID, Updated: d.Updated})
	})
	slices.SortFunc(q, func(a, b QueueEntry) int {
		if c := a.Updated.Compare(b.Updated); c != 0 {
			return c
		}
		return cmp.Compare(a.ID, b.ID)
	})
	return q
}

// Schedule plans day's Drop without executing it: the queue handed to the
// zone's release policy, which assigns deletion instants (paced with jitter
// and stalls, one instant for instant release, shuffled for randomized
// order).
func (r *DropRunner) Schedule(day simtime.Day, rng *rand.Rand) []Scheduled {
	return r.ScheduleQueue(day, r.BuildQueue(day), rng)
}

// ScheduleQueue is Schedule over an explicit, already-ordered queue. Crash
// recovery uses it to re-derive a partially executed Drop's original plan:
// the purged prefix is reconstructed from the deletion archive, the
// remaining entries come from BuildQueue on the recovered store, and —
// because every policy's draws depend only on the queue *length* and rng,
// and any policy reordering is a deterministic total order over the entries
// — the schedule (and therefore every remaining deletion instant) comes out
// exactly as the uninterrupted run would have produced it.
func (r *DropRunner) ScheduleQueue(day simtime.Day, queue []QueueEntry, rng *rand.Rand) []Scheduled {
	return r.policy.Schedule(day, queue, rng)
}

// Apply purges one scheduled deletion, making the name available.
func (r *DropRunner) Apply(s Scheduled) (model.DeletionEvent, error) {
	ev, err := r.store.purge(s.Name, s.Time, s.Rank)
	if err != nil {
		return ev, fmt.Errorf("drop rank %d: %w", s.Rank, err)
	}
	return ev, nil
}

// Run executes day's Drop, purging every queued domain and returning the
// ground-truth deletion events in order. rng drives the pacing noise; pass a
// seeded source for reproducible runs.
//
// Run assigns second-precision deletion instants: several domains share each
// second (the registry processes tens of deletions per second), which is why
// the paper's envelope model sees multiple ranks per timestamp. Callers that
// need to interleave other work with the deletions (for example racing EPP
// agents against the Drop) should use Schedule and Apply directly.
func (r *DropRunner) Run(day simtime.Day, rng *rand.Rand) ([]model.DeletionEvent, error) {
	sched := r.Schedule(day, rng)
	events := make([]model.DeletionEvent, 0, len(sched))
	for _, s := range sched {
		ev, err := r.Apply(s)
		if err != nil {
			return events, err
		}
		events = append(events, ev)
	}
	return events, nil
}

// EndTime returns the instant of the last deletion in events, or the zero
// time for an empty Drop.
func EndTime(events []model.DeletionEvent) time.Time {
	if len(events) == 0 {
		return time.Time{}
	}
	return events[len(events)-1].Time
}
