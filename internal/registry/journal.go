package registry

import (
	"fmt"
	"sort"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
	"dropzero/internal/zone"
)

// This file is the store's durability seam: every committed mutation is
// describable as a plain-data Mutation record, an attached Journal receives
// each record inside the mutating critical section, and Apply replays a
// record stream into an empty store, reproducing byte-identical state. The
// WAL encoding, segment management and snapshot files live in
// internal/journal; the registry only defines what a mutation *is* and how
// to re-apply one.

// MutKind identifies the store mutator a Mutation records.
type MutKind uint8

// One kind per mutator. Values are part of the on-disk WAL format: never
// renumber, only append.
const (
	MutAddRegistrar MutKind = 1 + iota
	MutCreate
	MutSeed
	MutTouch
	MutRenew
	MutTransfer
	MutSetState
	MutPurge
	MutAddZone
)

var mutKindNames = [...]string{
	MutAddRegistrar: "addRegistrar",
	MutCreate:       "create",
	MutSeed:         "seed",
	MutTouch:        "touch",
	MutRenew:        "renew",
	MutTransfer:     "transfer",
	MutSetState:     "setState",
	MutPurge:        "purge",
	MutAddZone:      "addZone",
}

// String returns the mutator name.
func (k MutKind) String() string {
	if int(k) < len(mutKindNames) && mutKindNames[k] != "" {
		return mutKindNames[k]
	}
	return fmt.Sprintf("MutKind(%d)", uint8(k))
}

// Mutation is the complete, self-contained record of one committed Store
// mutation. Every field a replay needs is absolute (assigned object IDs,
// resulting timestamps, resulting states), never derived from clocks or
// allocators, so applying the same record stream to an empty store always
// reproduces the same state. Which fields are meaningful depends on Kind:
//
//	MutAddRegistrar: Registrar
//	MutCreate:       ID, Name, RegistrarID, Created, Updated, Expiry
//	MutSeed:         ID, Name, RegistrarID, Created, Updated, Expiry, Status, DeleteDay
//	MutTouch:        Name, Updated
//	MutRenew:        Name, Updated, Expiry
//	MutTransfer:     Name, RegistrarID (gaining), Updated
//	MutSetState:     Name, Status, Updated (zero = keep), DeleteDay
//	MutPurge:        ID, Name, Time, Rank
//	MutAddZone:      Zone
type Mutation struct {
	Kind MutKind

	Name        string
	ID          uint64
	RegistrarID int

	Created time.Time
	Updated time.Time
	Expiry  time.Time

	Status    model.Status
	DeleteDay simtime.Day

	// Purge event fields.
	Time time.Time
	Rank int

	// MutAddRegistrar payload.
	Registrar model.Registrar

	// MutAddZone payload.
	Zone zone.Config
}

// Journal receives every committed store mutation. Append is called inside
// the mutating critical section (shard write lock or registrar lock), after
// the in-memory change and before the generation bump, so the journal's
// record order is a linearisation of commit order and the snapshotter's
// generation-equality check brackets exactly the records it has seen.
//
// Append must be fast and non-blocking (buffer the record); it returns a
// wait function for callers that need durability before acknowledging —
// the store invokes it after releasing all locks. A nil wait means nothing
// to wait for (asynchronous durability).
type Journal interface {
	Append(m Mutation) (wait func() error)
}

// SetJournal attaches j as the store's write-ahead journal; pass nil to
// detach. Attach before the store receives traffic: mutators read the
// pointer atomically, so a mid-traffic swap cannot corrupt state, but any
// mutation committed while no journal is attached is simply not logged.
func (s *Store) SetJournal(j Journal) {
	if j == nil {
		s.journal.Store(nil)
		return
	}
	s.journal.Store(&j)
}

// appendJournal hands m to the attached journal, if any. Callers hold the
// critical section the mutation committed under and must invoke the
// returned wait (via waitJournal) only after releasing every lock.
func (s *Store) appendJournal(m Mutation) func() error {
	if p := s.journal.Load(); p != nil {
		return (*p).Append(m)
	}
	return nil
}

// waitJournal runs the durability wait returned by appendJournal. A non-nil
// error means the mutation is committed in memory but its durability is not
// established — the store is ahead of its log, and the caller should treat
// the operation (and usually the process) as failed.
func waitJournal(wait func() error) error {
	if wait == nil {
		return nil
	}
	if err := wait(); err != nil {
		return fmt.Errorf("registry: journal: %w", err)
	}
	return nil
}

// Apply replays one mutation record during recovery. It reproduces exactly
// the state change the original mutator committed — assigned IDs, transfer
// code derivation, due-index maintenance, the deletion archive and the
// generation counter — without consulting the clock, the ID allocator or
// the attached journal (recovery attaches the journal only after replay).
// It is not part of the serving API: records must be applied in their
// original order, single-goroutine, before the store receives traffic.
func (s *Store) Apply(m Mutation) error {
	if m.Kind == MutAddRegistrar {
		s.regMu.Lock()
		s.registrars[m.Registrar.IANAID] = m.Registrar
		s.bumpGen()
		s.regMu.Unlock()
		return nil
	}
	if m.Kind == MutAddZone {
		return s.applyAddZone(m.Zone)
	}
	sh := s.shardOf(m.Name)
	sh.mu.Lock()
	ev, isPurge, err := s.applyDomainLocked(sh, &m)
	if err != nil {
		sh.mu.Unlock()
		return err
	}
	if isPurge {
		day := simtime.DayOf(ev.Time)
		s.delMu.Lock()
		s.deletions[day] = append(s.deletions[day], ev)
		s.delMu.Unlock()
	}
	s.bumpGen()
	sh.mu.Unlock()
	return nil
}

// applyDomainLocked replays one domain-shard mutation with sh's write lock
// held. It performs the in-shard state change only: the caller owns the
// generation bump, and for purges the deletion-archive append (the event is
// returned) — split out so ApplyBatch can amortise those across a batch
// while Apply keeps the one-record semantics.
func (s *Store) applyDomainLocked(sh *shard, m *Mutation) (ev model.DeletionEvent, isPurge bool, err error) {
	switch m.Kind {
	case MutCreate, MutSeed:
		_, tld, err := s.splitName(m.Name)
		if err != nil {
			return ev, false, fmt.Errorf("registry: replay %v %q: %w", m.Kind, m.Name, err)
		}
		if _, taken := sh.domains[m.Name]; taken {
			return ev, false, fmt.Errorf("registry: replay %v: %w: %q", m.Kind, ErrExists, m.Name)
		}
		d := &model.Domain{
			ID:          m.ID,
			Name:        m.Name,
			TLD:         tld,
			RegistrarID: m.RegistrarID,
			Created:     m.Created,
			Updated:     m.Updated,
			Expiry:      m.Expiry,
			Status:      model.StatusActive,
		}
		if m.Kind == MutSeed {
			d.Status = m.Status
			d.DeleteDay = m.DeleteDay
		}
		sh.domains[m.Name] = d
		sh.byID[d.ID] = d
		if m.Kind == MutCreate {
			// Creates mint a transfer code; seeds do not (SeedAt's contract).
			sh.authInfo[m.Name] = deriveAuthInfo(d.ID, m.Name)
		}
		sh.dueAdd(d)
		// Atomic-max, not load-then-store: parallel replay applies shards
		// concurrently, and a plain racing store could leave the allocator
		// below the highest replayed ID.
		for {
			cur := s.nextID.Load()
			if m.ID <= cur || s.nextID.CompareAndSwap(cur, m.ID) {
				break
			}
		}
		return ev, false, nil

	case MutTouch, MutRenew, MutTransfer, MutSetState:
		d, ok := sh.domains[m.Name]
		if !ok {
			return ev, false, fmt.Errorf("registry: replay %v: %w: %q", m.Kind, ErrNotFound, m.Name)
		}
		sh.dueRemove(d)
		switch m.Kind {
		case MutTouch:
			d.Updated = m.Updated
		case MutRenew:
			d.Expiry = m.Expiry
			d.Updated = m.Updated
			d.Status = model.StatusActive
		case MutTransfer:
			d.RegistrarID = m.RegistrarID
			d.Updated = m.Updated
			d.Status = model.StatusActive
			sh.authInfo[m.Name] = deriveAuthInfo(d.ID^0x5bf0, m.Name)
		case MutSetState:
			d.Status = m.Status
			if !m.Updated.IsZero() {
				d.Updated = m.Updated
			}
			d.DeleteDay = m.DeleteDay
		}
		sh.dueAdd(d)
		return ev, false, nil

	case MutPurge:
		d, ok := sh.domains[m.Name]
		if !ok {
			return ev, false, fmt.Errorf("registry: replay purge: %w: %q", ErrNotFound, m.Name)
		}
		ev = model.DeletionEvent{
			DomainID: d.ID,
			Name:     d.Name,
			TLD:      d.TLD,
			Time:     m.Time,
			Rank:     m.Rank,
		}
		sh.dueRemove(d)
		delete(sh.domains, m.Name)
		delete(sh.byID, d.ID)
		delete(sh.authInfo, m.Name)
		return ev, true, nil
	}
	return ev, false, fmt.Errorf("registry: replay: unknown mutation kind %d", m.Kind)
}

// ApplyBatch replays a contiguous run of mutation records — a replication
// batch, typically one primary group commit — acquiring each touched shard's
// lock once instead of once per record. This is the replica apply hot path:
// lock acquisitions and due-index work dominate per-record Apply cost, and a
// Drop-second burst lands hundreds of records in one batch.
//
// Equivalence with applying the records one at a time through Apply:
//
//   - Same-name records hash to the same shard, so their relative order is
//     preserved inside that shard's group.
//   - The generation counter advances by the group size inside each shard's
//     critical section, so the batch ends at exactly the generation the
//     primary had after the same records — the property that makes a
//     replica's ETags comparable to the primary's.
//   - Deletion-archive order is observable (the archive is rank-ordered per
//     day), so purge events are collected with their batch positions and
//     appended in original record order.
//   - MutAddRegistrar commits under the registrar lock, not a shard lock; it
//     acts as a barrier — pending groups flush, the record applies inline —
//     preserving its position in the stream.
//
// What batching gives up is mid-batch cross-shard atomicity: a concurrent
// reader can observe one shard's group applied while another's is pending,
// a state the primary never exposed under that generation. Each domain is
// always at a prefix-consistent point of its own history, the window closes
// when the batch's remaining bumps land (invalidating any cache entry built
// inside it), and batch boundaries are group-commit boundaries — the same
// transient read-your-replica caveat every asynchronous replica has.
//
// An error mid-batch leaves the batch partially applied. Errors here mean
// the record stream is not a faithful log of a store's history (replication
// transport corruption, a diverged follower); the caller must treat the
// store as poisoned, not retry.
func (s *Store) ApplyBatch(ms []Mutation) error {
	if len(ms) <= 1 {
		if len(ms) == 1 {
			return s.Apply(ms[0])
		}
		return nil
	}
	type purgeEv struct {
		idx int
		ev  model.DeletionEvent
	}
	var (
		groups  = make([][]int, len(s.shards))
		touched []uint64
		purges  []purgeEv
	)
	flush := func() error {
		for _, si := range touched {
			sh := &s.shards[si]
			idxs := groups[si]
			sh.mu.Lock()
			for _, i := range idxs {
				ev, isPurge, err := s.applyDomainLocked(sh, &ms[i])
				if err != nil {
					sh.mu.Unlock()
					return err
				}
				if isPurge {
					purges = append(purges, purgeEv{i, ev})
				}
			}
			// One add covering the whole group, inside the critical section:
			// a reader blocked on this shard wakes to a generation that
			// already covers everything it can now see, never a generation
			// from the middle of the group.
			s.gen.Add(uint64(len(idxs)))
			sh.mu.Unlock()
			groups[si] = groups[si][:0]
		}
		touched = touched[:0]
		if len(purges) > 0 {
			sort.Slice(purges, func(a, b int) bool { return purges[a].idx < purges[b].idx })
			s.delMu.Lock()
			for _, p := range purges {
				day := simtime.DayOf(p.ev.Time)
				s.deletions[day] = append(s.deletions[day], p.ev)
			}
			s.delMu.Unlock()
			purges = purges[:0]
		}
		return nil
	}
	for i := range ms {
		// Registrar and zone records commit under their own table locks, not
		// a shard lock; they act as barriers — pending groups flush, the
		// record applies inline — preserving their position in the stream
		// (domain records of a just-added zone must see it installed).
		if ms[i].Kind == MutAddRegistrar || ms[i].Kind == MutAddZone {
			if err := flush(); err != nil {
				return err
			}
			if err := s.Apply(ms[i]); err != nil {
				return err
			}
			continue
		}
		si := s.shardIndex(ms[i].Name)
		if len(groups[si]) == 0 {
			touched = append(touched, si)
		}
		groups[si] = append(groups[si], i)
	}
	return flush()
}

// SnapshotDomain is one registration in a store snapshot, paired with its
// transfer authorisation code ("" when none was minted — seeded domains).
type SnapshotDomain struct {
	Domain   model.Domain
	AuthInfo string
}

// SnapshotState is a full copy of the store's durable state: everything
// recovery needs to rebuild an identical store, and nothing that is
// process-local (caches, observers, the scan-engine flag).
type SnapshotState struct {
	Gen        uint64
	NextID     uint64
	Registrars []model.Registrar
	Domains    []SnapshotDomain
	Deletions  map[simtime.Day][]model.DeletionEvent
	// Zones are the zones installed beyond the implicit default .com/.net
	// one. Empty for pre-federation stores, whose snapshots stay
	// byte-identical to the pre-federation format.
	Zones []zone.Config
}

// CaptureSnapshot copies the store's durable state, visiting the shards one
// at a time under read locks — it never stops the world. The copy is NOT by
// itself consistent under concurrent mutation: the snapshotter brackets the
// call with two Generation() reads and discards the copy unless they match
// (the same read-render-reread discipline the response caches use), which
// proves no mutation committed while the copy was taken.
func (s *Store) CaptureSnapshot() SnapshotState {
	sh := s.CaptureSnapshotSharded()
	return sh.Flatten()
}

// CaptureSnapshotQuiesced copies the store's durable state under a full
// write quiesce: the registrar table and every shard stay read-locked for
// the whole copy, so no mutation can commit anywhere in the store while it
// runs (readers are unaffected — mutators briefly queue behind the held
// read locks). walSeq is invoked while the quiesce holds; because every
// journal append happens inside a mutating critical section, the value it
// returns identifies exactly the last record the copy contains — the
// consistency CaptureSnapshot gets optimistically from generation
// bracketing, guaranteed here at the cost of stalling writers for the
// duration of one full-store copy.
//
// Lock order is regMu < shards (ascending index) < delMu, consistent with
// every other path (mutators take a single shard lock, and only after any
// regMu use is finished; purge takes delMu inside its shard critical
// section), so the quiesce introduces no lock-order cycle. This is the
// snapshotter's fallback when sustained write load keeps defeating the
// optimistic capture; it is not a hot-path API.
func (s *Store) CaptureSnapshotQuiesced(walSeq func() uint64) (SnapshotState, uint64) {
	sh, seq := s.CaptureSnapshotShardedQuiesced(walSeq)
	return sh.Flatten(), seq
}

// RestoreSnapshot loads a captured state into an empty store during
// recovery: registrars, every registration (with its transfer code), the
// deletion archive, the ID allocator and the generation counter. Replaying
// the WAL tail on top via Apply then reproduces the exact pre-crash store.
// Recovery-only: the store must be empty and not yet serving.
func (s *Store) RestoreSnapshot(st SnapshotState) error {
	if err := s.RestoreZones(st.Zones); err != nil {
		return err
	}
	s.RestoreRegistrars(st.Registrars)
	if err := s.InstallRestoredDomains(st.Domains); err != nil {
		return err
	}
	s.MergeRestoredDeletions(st.Deletions)
	s.FinishRestore(st.Gen, st.NextID)
	return nil
}
