package registry

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"dropzero/internal/model"
	"dropzero/internal/simtime"
)

// captureJournal records every mutation the store commits, in commit order.
// It is the in-memory stand-in for the real WAL: the replay differential
// tests below assert that feeding the captured stream to Store.Apply
// reproduces the original store exactly, which is the property the on-disk
// journal's recovery path rests on.
type captureJournal struct {
	mu      sync.Mutex
	records []Mutation
}

func (c *captureJournal) Append(m Mutation) func() error {
	c.mu.Lock()
	c.records = append(c.records, m)
	c.mu.Unlock()
	return nil
}

// dumpStore renders every piece of durable store state as a canonical
// string: registrars, registrations with their transfer codes, due-index
// derived queues, the deletion archive, status counts and the allocator and
// generation counters. Two stores with equal dumps are interchangeable for
// every consumer in the system. Times print as RFC 3339 so stores built via
// different time.Time constructions (time.Date vs replayed values) compare
// by instant, not by internal representation.
func dumpStore(s *Store, from simtime.Day, days int) string {
	var b strings.Builder
	ts := func(t time.Time) string {
		if t.IsZero() {
			return "-"
		}
		return t.UTC().Format(time.RFC3339Nano)
	}

	regs := s.Registrars()
	sort.Slice(regs, func(i, j int) bool { return regs[i].IANAID < regs[j].IANAID })
	for _, r := range regs {
		fmt.Fprintf(&b, "registrar %d %q\n", r.IANAID, r.Name)
	}

	var ds []model.Domain
	s.Each(func(d *model.Domain) bool {
		ds = append(ds, *d)
		return true
	})
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name < ds[j].Name })
	for _, d := range ds {
		sh := s.shardOf(d.Name)
		sh.mu.RLock()
		auth := sh.authInfo[d.Name]
		sh.mu.RUnlock()
		fmt.Fprintf(&b, "domain %s id=%d tld=%s reg=%d created=%s updated=%s expiry=%s status=%s due=%v auth=%q\n",
			d.Name, d.ID, d.TLD, d.RegistrarID, ts(d.Created), ts(d.Updated), ts(d.Expiry), d.Status, d.DeleteDay, auth)
	}

	// The due indexes are not directly visible; the deletion queues built
	// from them are. Dump every queue in the window so a replay that filled
	// a wrong bucket diverges here even when the raw fields match.
	r := NewDropRunner(s, DefaultDropConfig())
	for i := 0; i < days; i++ {
		day := from.AddDays(i)
		for _, q := range r.BuildQueue(day) {
			fmt.Fprintf(&b, "queue %v %s id=%d updated=%s\n", day, q.Name, q.ID, ts(q.Updated))
		}
	}

	var archived []simtime.Day
	s.delMu.Lock()
	for day := range s.deletions {
		archived = append(archived, day)
	}
	sort.Slice(archived, func(i, j int) bool {
		return archived[i].At(0, 0, 0).Before(archived[j].At(0, 0, 0))
	})
	for _, day := range archived {
		for _, ev := range s.deletions[day] {
			fmt.Fprintf(&b, "deletion %v rank=%d id=%d %s.%s at=%s\n",
				day, ev.Rank, ev.DomainID, ev.Name, ev.TLD, ts(ev.Time))
		}
	}
	s.delMu.Unlock()

	counts := s.StatusCounts()
	var sts []model.Status
	for st := range counts {
		sts = append(sts, st)
	}
	sort.Slice(sts, func(i, j int) bool { return sts[i] < sts[j] })
	for _, st := range sts {
		fmt.Fprintf(&b, "count %s=%d\n", st, counts[st])
	}

	fmt.Fprintf(&b, "nextID=%d gen=%d\n", s.nextID.Load(), s.gen.Load())
	return b.String()
}

// diffDumps reports the first line where two dumps diverge, keeping test
// failures readable (full dumps run to thousands of lines).
func diffDumps(t *testing.T, wantName, gotName, want, got string) {
	t.Helper()
	if want == got {
		return
	}
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			t.Errorf("store dumps diverge at line %d:\n%s: %s\n%s: %s", i+1, wantName, w, gotName, g)
			return
		}
	}
}

// TestReplayMatchesOriginal is the journal's differential test: drive a
// full multi-week workout (churn, lifecycle ticks, Drops) with a capturing
// journal attached, replay the captured mutation stream into an empty
// store, and require the replayed store to be indistinguishable from the
// original — same registrations, transfer codes, queues, deletion archive,
// ID allocator and generation counter.
func TestReplayMatchesOriginal(t *testing.T) {
	const days = 20
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	for _, seed := range []int64{1, 7, 20180108} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			cap := &captureJournal{}
			_, orig := runEngineOn(t, seed, days, false, 0, cap)
			if len(cap.records) < 500 {
				t.Fatalf("workout too quiet: only %d journal records", len(cap.records))
			}

			replayed := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
			for i, m := range cap.records {
				if err := replayed.Apply(m); err != nil {
					t.Fatalf("record %d (%v %q): %v", i, m.Kind, m.Name, err)
				}
			}
			diffDumps(t, "original", "replayed",
				dumpStore(orig, start, days+40), dumpStore(replayed, start, days+40))
		})
	}
}

// TestSnapshotPlusTailMatchesOriginal checks the recovery composition the
// on-disk journal performs: restore a snapshot captured at an arbitrary
// point in the mutation stream, replay only the records after it, and the
// result must equal a full replay. Cut points cover the stream start (pure
// replay), the end (pure snapshot) and several interior positions.
func TestSnapshotPlusTailMatchesOriginal(t *testing.T) {
	const days = 12
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	cap := &captureJournal{}
	_, orig := runEngineOn(t, 42, days, false, 0, cap)
	rng := rand.New(rand.NewSource(99))

	cuts := []int{0, 1, len(cap.records) / 2, len(cap.records) - 1, len(cap.records)}
	for i := 0; i < 4; i++ {
		cuts = append(cuts, rng.Intn(len(cap.records)+1))
	}
	want := dumpStore(orig, start, days+40)
	for _, cut := range cuts {
		// Build the snapshot source by replaying the prefix, as recovery
		// would have the live store at the moment the snapshotter ran.
		pre := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
		for _, m := range cap.records[:cut] {
			if err := pre.Apply(m); err != nil {
				t.Fatalf("cut %d: prefix replay: %v", cut, err)
			}
		}
		snap := pre.CaptureSnapshot()

		re := NewStore(simtime.NewSimClock(start.At(0, 0, 0)))
		if err := re.RestoreSnapshot(snap); err != nil {
			t.Fatalf("cut %d: restore: %v", cut, err)
		}
		for _, m := range cap.records[cut:] {
			if err := re.Apply(m); err != nil {
				t.Fatalf("cut %d: tail replay: %v", cut, err)
			}
		}
		diffDumps(t, "original", fmt.Sprintf("snapshot@%d+tail", cut),
			want, dumpStore(re, start, days+40))
	}
}

// TestCaptureSnapshotQuiescedConsistent: the quiesced capture must really
// stop every mutator for the duration of the copy. The walSeq callback
// reads the generation counter while the quiesce holds; if any writer could
// commit mid-copy, the generation baked into the state and the quiesced
// read would diverge. Hammered from several goroutines so a broken quiesce
// fails fast.
func TestCaptureSnapshotQuiescedConsistent(t *testing.T) {
	start := simtime.Day{Year: 2018, Month: time.January, Dom: 8}
	s := NewStoreWithShards(simtime.NewSimClock(start.At(0, 0, 0)), 8)
	s.AddRegistrar(model.Registrar{IANAID: 900, Name: "Reg"})
	const names = 64
	for i := 0; i < names; i++ {
		if _, err := s.CreateAt(fmt.Sprintf("quiesce%02d.com", i), 900, 1, start.At(9, 0, i%60)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.TouchAt(fmt.Sprintf("quiesce%02d.com", (w*17+i)%names), 900, start.At(10, w, i%60))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		st, seq := s.CaptureSnapshotQuiesced(s.Generation)
		if st.Gen != seq {
			t.Fatalf("iteration %d: a writer committed during the quiesce: state gen %d, quiesced read %d", i, st.Gen, seq)
		}
		if len(st.Domains) != names {
			t.Fatalf("iteration %d: captured %d domains, want %d", i, len(st.Domains), names)
		}
	}
	close(stop)
	wg.Wait()
}
