// Package dropzero reproduces the measurement system of "From Deletion to
// Re-Registration in Zero Seconds: Domain Registrar Behaviour During the
// Drop" (Lauinger et al., IMC 2018): a registry-ecosystem simulator that
// deletes expired domains in a predictable order during a daily Drop, the
// paper's data-collection pipeline (pending-delete lists, RDAP with WHOIS
// fallback, a maliciousness oracle), and the paper's analytical core — the
// minimum-envelope model of the earliest possible re-registration instant,
// the re-registration delay metric, the drop-catch classifier, and the
// adaptive delay-interval market-share analyses.
//
// The package is a facade: it re-exports the user-facing types of the
// internal packages so applications need a single import.
//
//	res, err := dropzero.Run(dropzero.DefaultConfig())
//	a := dropzero.NewAnalysis(dropzero.AnalysisInputFromResult(res))
//	fmt.Print(a.BuildReport())
package dropzero

import (
	"dropzero/internal/analysis"
	"dropzero/internal/cluster"
	"dropzero/internal/core"
	"dropzero/internal/measure"
	"dropzero/internal/model"
	"dropzero/internal/sim"
	"dropzero/internal/simtime"
	"io"
)

// Core data types.
type (
	// Observation is one dataset row: a pending-delete domain, its prior
	// registration metadata, and any observed re-registration.
	Observation = model.Observation
	// PriorRegistration is the expiring registration's metadata.
	PriorRegistration = model.PriorRegistration
	// Rereg is an observed re-registration event.
	Rereg = model.Rereg
	// Registrar is one ICANN accreditation with its contact record.
	Registrar = model.Registrar
	// Day is a UTC calendar day (the unit of the Drop).
	Day = simtime.Day
)

// The paper's analytical core.
type (
	// Envelope is a deletion day's minimum-envelope curve (§4.2).
	Envelope = core.Envelope
	// EnvelopeConfig parameterises envelope construction.
	EnvelopeConfig = core.EnvelopeConfig
	// Ranked is an observation with its deletion-order rank.
	Ranked = core.Ranked
	// DelayResult is the delay metric for one re-registered domain.
	DelayResult = core.DelayResult
	// DayAnalysis bundles one day's ranked domains, envelope and delays.
	DayAnalysis = core.DayAnalysis
	// Classifier labels re-registrations as drop-catch (delay ≤ 3 s).
	Classifier = core.Classifier
	// Interval is one adaptive delay interval (§4.4).
	Interval = core.Interval
	// Ordering is a candidate deletion-order key (§4.1).
	Ordering = core.Ordering
)

// Simulation and analysis entry points.
type (
	// Config parameterises a full measurement study.
	Config = sim.Config
	// Result is a completed study: dataset, ground truth, ecosystem.
	Result = sim.Result
	// Analysis generates the paper's figures from a dataset.
	Analysis = analysis.Analysis
	// AnalysisInput is the data an Analysis consumes.
	AnalysisInput = analysis.Input
	// Report bundles every figure and in-text statistic.
	Report = analysis.Report
)

// DropCatchMaxDelay is the paper's drop-catch threshold (3 s).
const DropCatchMaxDelay = core.DropCatchMaxDelay

// DefaultConfig returns the experiment harness configuration: a 56-day
// study at one tenth of the paper's daily deletion volume.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Run executes a full simulated measurement study.
func Run(cfg Config) (*Result, error) { return sim.Run(cfg) }

// NewAnalysis prepares the per-day analyses and registrar clustering.
func NewAnalysis(in AnalysisInput) *Analysis { return analysis.New(in) }

// AnalysisInputFromResult adapts a simulation result for analysis, wiring
// ground truth for the accuracy ablations and operator names for display.
func AnalysisInputFromResult(res *Result) AnalysisInput {
	return AnalysisInput{
		Observations: res.Observations,
		Registrars:   res.Registrars,
		ServiceOf:    res.Directory.ServiceOf,
		Deletions:    res.Deletions,
		Parallelism:  res.Config.Parallelism,
	}
}

// Rank sorts one deletion day's observations by the inferred deletion order
// (last-updated time, ties broken by domain ID) and assigns ranks.
func Rank(obs []*Observation) []Ranked { return core.Rank(obs, core.OrderLastUpdate) }

// BuildEnvelope computes a day's minimum-envelope curve from ranked
// observations (§4.2).
func BuildEnvelope(ranked []Ranked, cfg EnvelopeConfig) (*Envelope, error) {
	return core.BuildEnvelope(ranked, cfg)
}

// DefaultEnvelopeConfig returns the paper's envelope parameters (one-minute
// tail truncation).
func DefaultEnvelopeConfig() EnvelopeConfig { return core.DefaultEnvelopeConfig() }

// AnalyzeDay runs ranking, envelope construction and delay computation for
// one deletion day.
func AnalyzeDay(day Day, obs []*Observation, cfg EnvelopeConfig) (*DayAnalysis, error) {
	return core.AnalyzeDay(day, obs, cfg)
}

// AnalyzeAll runs AnalyzeDay over a multi-day dataset, skipping days whose
// envelope cannot be built.
func AnalyzeAll(obs []*Observation, cfg EnvelopeConfig) ([]*DayAnalysis, int) {
	return core.AnalyzeAll(obs, cfg)
}

// NewClassifier returns the paper's drop-catch classifier (3 s threshold,
// 19:00–20:00 window heuristic).
func NewClassifier() *Classifier { return core.NewClassifier() }

// ClusterRegistrars groups accreditations into operator clusters by shared
// contact details.
func ClusterRegistrars(regs []Registrar) *cluster.Clusters { return cluster.Build(regs) }

// WriteCSV persists a dataset in the canonical CSV layout.
func WriteCSV(w io.Writer, obs []*Observation) error { return measure.WriteCSV(w, obs) }

// ReadCSV loads a dataset written by WriteCSV.
func ReadCSV(r io.Reader) ([]*Observation, error) { return measure.ReadCSV(r) }
